
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/basic_layers.cc" "src/nn/CMakeFiles/winomc_nn.dir/basic_layers.cc.o" "gcc" "src/nn/CMakeFiles/winomc_nn.dir/basic_layers.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/nn/CMakeFiles/winomc_nn.dir/batchnorm.cc.o" "gcc" "src/nn/CMakeFiles/winomc_nn.dir/batchnorm.cc.o.d"
  "/root/repo/src/nn/conv_layer.cc" "src/nn/CMakeFiles/winomc_nn.dir/conv_layer.cc.o" "gcc" "src/nn/CMakeFiles/winomc_nn.dir/conv_layer.cc.o.d"
  "/root/repo/src/nn/dataset.cc" "src/nn/CMakeFiles/winomc_nn.dir/dataset.cc.o" "gcc" "src/nn/CMakeFiles/winomc_nn.dir/dataset.cc.o.d"
  "/root/repo/src/nn/join.cc" "src/nn/CMakeFiles/winomc_nn.dir/join.cc.o" "gcc" "src/nn/CMakeFiles/winomc_nn.dir/join.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/winomc_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/winomc_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/winomc_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/winomc_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/winomc_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/winomc_nn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/winograd/CMakeFiles/winomc_winograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/winomc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/winomc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
