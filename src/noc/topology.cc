#include "noc/topology.hh"

#include "common/logging.hh"

namespace winomc::noc {

int
Topology::hopCount(int src, int dst) const
{
    int hops = 0;
    int cur = src;
    while (cur != dst) {
        int port = route(cur, dst);
        cur = neighbor(cur, port);
        ++hops;
        winomc_assert(hops <= nodes(), "routing loop ", src, "->", dst);
    }
    return hops;
}

// ---------------------------------------------------------------- Ring

RingTopology::RingTopology(int n_) : n(n_)
{
    winomc_assert(n_ >= 2, "ring needs >= 2 nodes");
}

int
RingTopology::neighbor(int node, int port) const
{
    winomc_assert(port == 0 || port == 1, "bad ring port");
    return port == 0 ? (node + 1) % n : (node + n - 1) % n;
}

int
RingTopology::peerPort(int, int port) const
{
    return port == 0 ? 1 : 0; // +1 link enters the peer's CCW port
}

int
RingTopology::route(int cur, int dst) const
{
    winomc_assert(cur != dst, "routing to self");
    int fwd = (dst - cur + n) % n;
    return fwd <= n - fwd ? 0 : 1;
}

int
RingTopology::nextVc(int node, int out_port, int cur_vc) const
{
    // Dateline between node n-1 and node 0: packets switch to the high
    // VC when crossing it (in either direction), which breaks the
    // channel-dependency cycle around the ring.
    bool crossing = (node == n - 1 && out_port == 0) ||
                    (node == 0 && out_port == 1);
    return crossing ? 1 : cur_vc;
}

// ----------------------------------------------------- FlatButterfly2D

FlatButterfly2D::FlatButterfly2D(int k_) : k(k_)
{
    winomc_assert(k_ >= 2, "flattened butterfly needs k >= 2");
}

int
FlatButterfly2D::neighbor(int node, int port) const
{
    winomc_assert(port >= 0 && port < ports(), "bad fbfly port");
    int row = rowOf(node), col = colOf(node);
    if (port < k - 1) {
        // Row link to the port-th other column.
        int other = port < col ? port : port + 1;
        return row * k + other;
    }
    int p = port - (k - 1);
    int other = p < row ? p : p + 1;
    return other * k + col;
}

int
FlatButterfly2D::peerPort(int node, int port) const
{
    int peer = neighbor(node, port);
    if (port < k - 1) {
        int my_col = colOf(node);
        int peer_col = colOf(peer);
        (void)peer_col;
        // On the peer, the link back to us is its row port toward my_col.
        return my_col < colOf(peer) ? my_col : my_col - 1;
    }
    int my_row = rowOf(node);
    return (k - 1) + (my_row < rowOf(peer) ? my_row : my_row - 1);
}

int
FlatButterfly2D::route(int cur, int dst) const
{
    winomc_assert(cur != dst, "routing to self");
    int ccol = colOf(cur), dcol = colOf(dst);
    int crow = rowOf(cur), drow = rowOf(dst);
    if (ccol != dcol) {
        // Row (column-changing) hop first.
        return dcol < ccol ? dcol : dcol - 1;
    }
    winomc_assert(crow != drow, "inconsistent route state");
    return (k - 1) + (drow < crow ? drow : drow - 1);
}

// ------------------------------------------------------- FullyConnected

FullyConnected::FullyConnected(int n_) : n(n_)
{
    winomc_assert(n_ >= 2, "clique needs >= 2 nodes");
}

int
FullyConnected::neighbor(int node, int port) const
{
    winomc_assert(port >= 0 && port < n - 1, "bad clique port");
    return port < node ? port : port + 1;
}

int
FullyConnected::peerPort(int node, int port) const
{
    int peer = neighbor(node, port);
    return node < peer ? node : node - 1;
}

int
FullyConnected::route(int cur, int dst) const
{
    winomc_assert(cur != dst, "routing to self");
    return dst < cur ? dst : dst - 1;
}

} // namespace winomc::noc
