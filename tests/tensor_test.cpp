/**
 * @file
 * Tests for the tensor / small-matrix substrate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.hh"
#include "tensor/tensor.hh"

namespace winomc {
namespace {

TEST(Tensor, ShapeAndIndexing)
{
    Tensor t(2, 3, 4, 5);
    EXPECT_EQ(t.n(), 2);
    EXPECT_EQ(t.c(), 3);
    EXPECT_EQ(t.h(), 4);
    EXPECT_EQ(t.w(), 5);
    EXPECT_EQ(t.size(), 120u);
    t.at(1, 2, 3, 4) = 7.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2, 3, 4), 7.0f);
    EXPECT_FLOAT_EQ(t.at(0, 0, 0, 0), 0.0f);
}

TEST(Tensor, TwoDConvenience)
{
    Tensor m(3, 4);
    m.at(2, 3) = 1.5f;
    EXPECT_FLOAT_EQ(m.at(0, 0, 2, 3), 1.5f);
    EXPECT_EQ(m.n(), 1);
    EXPECT_EQ(m.h(), 3);
}

TEST(Tensor, ArithmeticOps)
{
    Tensor a(1, 1, 2, 2), b(1, 1, 2, 2);
    a.fill(2.0f);
    b.fill(3.0f);
    a += b;
    EXPECT_FLOAT_EQ(a.at(0, 0, 1, 1), 5.0f);
    a -= b;
    EXPECT_FLOAT_EQ(a.at(0, 0, 0, 1), 2.0f);
    a *= 0.5f;
    EXPECT_FLOAT_EQ(a.at(0, 0, 0, 0), 1.0f);
}

TEST(Tensor, Reductions)
{
    Tensor a(1, 1, 1, 4);
    a.at(0, 0) = -3.0f;
    a.at(0, 1) = 1.0f;
    a.at(0, 2) = 2.0f;
    a.at(0, 3) = 0.0f;
    EXPECT_FLOAT_EQ(a.absMax(), 3.0f);
    Tensor b = a;
    b.at(0, 2) = 5.0f;
    EXPECT_FLOAT_EQ(a.maxAbsDiff(b), 3.0f);
    EXPECT_NEAR(a.stddev(), std::sqrt(3.5), 1e-5);
}

TEST(Tensor, KaimingInitScale)
{
    Rng rng(21);
    Tensor w(64, 32, 3, 3); // fan_in = 288
    w.fillKaiming(rng);
    EXPECT_NEAR(w.stddev(), std::sqrt(2.0 / 288.0), 0.005);
}

TEST(Matrix, InitializerAndTranspose)
{
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.cols(), 3);
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3);
    EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
}

TEST(Matrix, Product)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{5, 6}, {7, 8}};
    Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Matrix, IdentityNeutral)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix i = Matrix::identity(2);
    EXPECT_LT((a * i).maxAbsDiff(a), 1e-15);
    EXPECT_LT((i * a).maxAbsDiff(a), 1e-15);
}

TEST(Matrix, AbsAndAddSub)
{
    Matrix a{{-1, 2}, {3, -4}};
    Matrix b = a.abs();
    EXPECT_DOUBLE_EQ(b.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(b.at(1, 1), 4.0);
    Matrix s = a + b;
    EXPECT_DOUBLE_EQ(s.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(s.at(0, 1), 4.0);
    Matrix d = a - b;
    EXPECT_DOUBLE_EQ(d.at(1, 0), 0.0);
    Matrix h = 0.5 * b;
    EXPECT_DOUBLE_EQ(h.at(1, 1), 2.0);
}

} // namespace
} // namespace winomc
