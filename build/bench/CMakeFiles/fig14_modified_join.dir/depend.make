# Empty dependencies file for fig14_modified_join.
# This may be replaced when dependencies are built.
