/**
 * @file
 * Vault-level model of the 3D-stacked (HMC-style) DRAM of Table III:
 * 16 vaults, each an independent channel with per-bank row buffers and
 * an FR-FCFS (first-ready, first-come-first-served) scheduler; the
 * vault data TSVs move 20 bytes per 1 GHz cycle, so the stack peaks at
 * 320 GB/s.
 *
 * The system-level model (ndp/timing.hh) uses the flat 320 GB/s figure;
 * this module justifies it: streaming accesses sustain near peak while
 * random fine-grained traffic collapses to row-miss service rates, and
 * FR-FCFS recovers bandwidth that strict FCFS loses on mixed streams
 * (exactly why Table III calls out the scheduler).
 */

#ifndef WINOMC_NDP_HMC_DRAM_HH
#define WINOMC_NDP_HMC_DRAM_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/units.hh"

namespace winomc::ndp {

struct HmcConfig
{
    int vaults = 16;
    int banksPerVault = 8;
    uint32_t rowBytes = 2048;      ///< row-buffer coverage per bank
    uint32_t accessBytes = 32;     ///< request granularity
    int busBytesPerCycle = 20;     ///< per-vault TSV bandwidth (1 GHz)

    // DRAM core timings in cycles.
    int tRcd = 14;  ///< activate -> column access
    int tRp = 14;   ///< precharge
    int tCas = 14;  ///< column access -> first data
    /** Scheduling window per vault (max reorder distance). */
    int windowDepth = 16;
    bool frfcfs = true; ///< false = strict in-order FCFS

    double peakBandwidth() const
    {
        return double(vaults) * busBytesPerCycle * 1e9;
    }
};

/** One memory request (reads and writes are modeled alike). */
struct DramRequest
{
    uint64_t addr;
    uint32_t bytes;
    Tick issued = 0;
    Tick completed = 0;
    bool done = false;
    int beatsLeft = 0; ///< internal: unserviced access-granularity beats
};

/**
 * Cycle-stepped stack model. Submit requests, step() until drained,
 * read back completion times and bandwidth.
 */
class HmcDram
{
  public:
    explicit HmcDram(const HmcConfig &cfg = {});

    /** Queue a request; returns its id. */
    int submit(uint64_t addr, uint32_t bytes);

    void step();
    /** Step until all requests complete (or max_cycles). */
    bool drain(uint64_t max_cycles);

    Tick now() const { return cycle; }
    const DramRequest &request(int id) const;
    size_t pendingCount() const { return pending; }

    /** Bytes completed / elapsed time, in bytes per second. */
    double achievedBandwidth() const;
    /** achievedBandwidth() as a fraction of the stack's peak. */
    double bandwidthUtilization() const
    {
        return achievedBandwidth() / cfg.peakBandwidth();
    }
    uint64_t rowHits() const { return row_hits; }
    uint64_t rowMisses() const { return row_misses; }
    /** Row-buffer hit fraction of all column accesses so far. */
    double rowHitRate() const
    {
        uint64_t all = row_hits + row_misses;
        return all ? double(row_hits) / double(all) : 0.0;
    }

    /** Bandwidth/row-buffer gauges and counters under `prefix`
     *  (e.g. "hmc.stream"). No-op when metrics are disabled. */
    void exportMetrics(const std::string &prefix) const;

    const HmcConfig &config() const { return cfg; }

  private:
    struct Bank
    {
        int64_t openRow = -1;
        Tick readyAt = 0; ///< earliest next column command
    };
    struct VaultEntry
    {
        int reqId;
        int bank;
        int64_t row;
    };
    struct Vault
    {
        std::deque<VaultEntry> queue;
        std::vector<Bank> banks;
        Tick busFreeAt = 0;
    };

    int vaultOf(uint64_t addr) const;
    int bankOf(uint64_t addr) const;
    int64_t rowOf(uint64_t addr) const;
    void scheduleVault(Vault &vault);

    HmcConfig cfg;
    Tick cycle = 0;
    std::vector<Vault> vaults;
    std::vector<DramRequest> requests;
    size_t pending = 0;
    uint64_t bytesDone = 0;
    uint64_t row_hits = 0;
    uint64_t row_misses = 0;
};

} // namespace winomc::ndp

#endif // WINOMC_NDP_HMC_DRAM_HH
