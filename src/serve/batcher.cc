#include "serve/batcher.hh"

#include "common/logging.hh"

namespace winomc::serve {

RequestQueue::RequestQueue(std::size_t capacity) : cap(capacity)
{
    winomc_assert(capacity >= 1, "RequestQueue needs capacity >= 1");
}

bool
RequestQueue::push(Request r)
{
    {
        std::unique_lock<std::mutex> lock(mu);
        canPush.wait(lock,
                     [&] { return shut || q.size() < cap; });
        if (shut)
            return false;
        q.push_back(std::move(r));
    }
    canPop.notify_one();
    return true;
}

std::vector<Request>
RequestQueue::popBatch(int maxBatch, std::chrono::microseconds maxDelay)
{
    winomc_assert(maxBatch >= 1, "popBatch needs maxBatch >= 1");
    std::vector<Request> batch;
    std::unique_lock<std::mutex> lock(mu);
    canPop.wait(lock, [&] { return shut || !q.empty(); });
    if (q.empty())
        return batch; // closed and drained

    // The latency bound is anchored at the head request's arrival, so
    // a batch the worker was too busy to start on time goes out as
    // soon as the worker gets here.
    const auto deadline = q.front().enqueued + maxDelay;
    const int c = q.front().x.c();
    const int h = q.front().x.h();
    const int w = q.front().x.w();

    auto takePrefix = [&] {
        while (int(batch.size()) < maxBatch && !q.empty() &&
               q.front().x.c() == c && q.front().x.h() == h &&
               q.front().x.w() == w) {
            batch.push_back(std::move(q.front()));
            q.pop_front();
        }
    };
    takePrefix();
    while (int(batch.size()) < maxBatch && q.empty() && !shut) {
        if (canPop.wait_until(lock, deadline) ==
            std::cv_status::timeout)
            break; // deadline: emit the partial batch
        takePrefix();
    }
    // A differently-shaped head ends the batch immediately: holding a
    // shape-pure batch open behind it would reorder requests.
    lock.unlock();
    canPush.notify_all();
    return batch;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        shut = true;
    }
    canPush.notify_all();
    canPop.notify_all();
}

std::size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu);
    return q.size();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu);
    return shut;
}

} // namespace winomc::serve
