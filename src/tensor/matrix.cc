#include "tensor/matrix.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace winomc {

Matrix::Matrix(int rows, int cols)
    : nrows(rows), ncols(cols), buf(size_t(rows) * cols, 0.0)
{
    winomc_assert(rows >= 0 && cols >= 0, "negative matrix dim");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init)
    : nrows(int(init.size())), ncols(0)
{
    for (const auto &row : init) {
        if (ncols == 0)
            ncols = int(row.size());
        winomc_assert(int(row.size()) == ncols, "ragged matrix init");
        buf.insert(buf.end(), row.begin(), row.end());
    }
}

double &
Matrix::at(int r, int c)
{
    winomc_assert(r >= 0 && r < nrows && c >= 0 && c < ncols,
                  "matrix index (", r, ",", c, ") out of (", nrows, ",",
                  ncols, ")");
    return buf[size_t(r) * ncols + c];
}

double
Matrix::at(int r, int c) const
{
    return const_cast<Matrix *>(this)->at(r, c);
}

Matrix
Matrix::transposed() const
{
    Matrix t(ncols, nrows);
    for (int r = 0; r < nrows; ++r)
        for (int c = 0; c < ncols; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

Matrix
Matrix::abs() const
{
    Matrix a(nrows, ncols);
    for (int r = 0; r < nrows; ++r)
        for (int c = 0; c < ncols; ++c)
            a.at(r, c) = std::abs(at(r, c));
    return a;
}

double
Matrix::maxAbsDiff(const Matrix &o) const
{
    winomc_assert(nrows == o.nrows && ncols == o.ncols,
                  "maxAbsDiff shape mismatch");
    double m = 0.0;
    for (int r = 0; r < nrows; ++r)
        for (int c = 0; c < ncols; ++c)
            m = std::max(m, std::abs(at(r, c) - o.at(r, c)));
    return m;
}

Matrix
Matrix::identity(int n)
{
    Matrix m(n, n);
    for (int i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream oss;
    for (int r = 0; r < nrows; ++r) {
        oss << "[";
        for (int c = 0; c < ncols; ++c) {
            char cell[64];
            std::snprintf(cell, sizeof(cell), " %.*g", precision, at(r, c));
            oss << cell;
        }
        oss << " ]\n";
    }
    return oss.str();
}

Matrix
operator*(const Matrix &a, const Matrix &b)
{
    winomc_assert(a.cols() == b.rows(), "matmul shape mismatch: (",
                  a.rows(), "x", a.cols(), ") * (", b.rows(), "x",
                  b.cols(), ")");
    Matrix out(a.rows(), b.cols());
    for (int r = 0; r < a.rows(); ++r) {
        for (int k = 0; k < a.cols(); ++k) {
            double av = a.at(r, k);
            if (av == 0.0)
                continue;
            for (int c = 0; c < b.cols(); ++c)
                out.at(r, c) += av * b.at(k, c);
        }
    }
    return out;
}

Matrix
operator+(const Matrix &a, const Matrix &b)
{
    winomc_assert(a.rows() == b.rows() && a.cols() == b.cols(),
                  "matrix + shape mismatch");
    Matrix out(a.rows(), a.cols());
    for (int r = 0; r < a.rows(); ++r)
        for (int c = 0; c < a.cols(); ++c)
            out.at(r, c) = a.at(r, c) + b.at(r, c);
    return out;
}

Matrix
operator-(const Matrix &a, const Matrix &b)
{
    winomc_assert(a.rows() == b.rows() && a.cols() == b.cols(),
                  "matrix - shape mismatch");
    Matrix out(a.rows(), a.cols());
    for (int r = 0; r < a.rows(); ++r)
        for (int c = 0; c < a.cols(); ++c)
            out.at(r, c) = a.at(r, c) - b.at(r, c);
    return out;
}

Matrix
operator*(double s, const Matrix &a)
{
    Matrix out(a.rows(), a.cols());
    for (int r = 0; r < a.rows(); ++r)
        for (int c = 0; c < a.cols(); ++c)
            out.at(r, c) = s * a.at(r, c);
    return out;
}

} // namespace winomc
