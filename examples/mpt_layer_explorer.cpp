/**
 * @file
 * Explore multi-dimensional parallel training of a single convolution
 * layer on the simulated 256-worker NDP system: pick (or define) a
 * layer and see what every Table IV configuration and every cluster
 * shape costs, and what dynamic clustering decides.
 *
 * Usage:
 *   mpt_layer_explorer                      # the five Table II layers
 *   mpt_layer_explorer I J HW [batch] [p]   # a custom layer
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/metrics.hh"
#include "common/table.hh"
#include "common/trace.hh"
#include "mpt/clustering.hh"
#include "mpt/layer_sim.hh"
#include "workloads/layers.hh"

using namespace winomc;
using namespace winomc::mpt;

namespace {

void
explore(const ConvSpec &spec, SystemParams &sp)
{
    std::printf("== %s: %dx%d channels, %dx%d feature map, batch %d, "
                "%d workers ==\n",
                spec.name.c_str(), spec.inCh, spec.outCh, spec.h,
                spec.w, spec.batch, sp.workers);

    Table t("Table IV configurations");
    t.header({"config", "shape", "algorithm", "fwd us", "bwd us",
              "total us", "energy J"});
    for (Strategy s : {Strategy::DirectDP, Strategy::WinoDP,
                       Strategy::WinoMPT, Strategy::WinoMPTPredict,
                       Strategy::WinoMPTPredictDyn}) {
        LayerResult r = simulateLayer(spec, s, sp);
        t.row()
            .cell(strategyName(s))
            .cell(r.shape.toString())
            .cell(r.algoName)
            .cell(r.fwd.seconds * 1e6, 1)
            .cell(r.bwd.seconds * 1e6, 1)
            .cell(r.totalSeconds() * 1e6, 1)
            .cell(r.totalEnergy().total(), 3);
    }
    t.print();

    Table c("dynamic-clustering candidates (prediction on)");
    c.header({"shape", "total us", "comm MiB/worker"});
    for (const auto &choice : evaluateShapes(spec, sp)) {
        c.row()
            .cell(choice.shape.toString())
            .cell(choice.seconds * 1e6, 1)
            .cell(choice.commBytesPerWorker / kMiB, 3);
    }
    c.print();
}

} // namespace

int
main(int argc, char **argv)
{
    SystemParams sp;
    if (argc >= 4) {
        ConvSpec spec;
        spec.name = "custom";
        spec.inCh = std::atoi(argv[1]);
        spec.outCh = std::atoi(argv[2]);
        spec.h = spec.w = std::atoi(argv[3]);
        spec.batch = argc >= 5 ? std::atoi(argv[4]) : 256;
        spec.r = 3;
        if (argc >= 6)
            sp.workers = std::atoi(argv[5]);
        if (spec.inCh <= 0 || spec.outCh <= 0 || spec.h <= 0 ||
            spec.batch <= 0 || sp.workers <= 0) {
            std::fprintf(stderr,
                         "usage: %s [I J HW [batch] [workers]]\n",
                         argv[0]);
            return 1;
        }
        explore(spec, sp);
        metrics::dumpIfConfigured();
        trace::flushIfConfigured();
        return 0;
    }

    for (const auto &spec : workloads::tableTwoLayers())
        explore(spec, sp);

    // WINOMC_METRICS=<path> collects the per-phase
    // compute/scatter/gather/collective accounting of every simulated
    // layer (the Fig 15/16 decomposition) as a JSON/CSV artifact.
    metrics::dumpIfConfigured();
    trace::flushIfConfigured();
    if (!metrics::configuredPath().empty())
        std::printf("metrics dump (WINOMC_METRICS): %s\n",
                    metrics::configuredPath().c_str());
    return 0;
}
