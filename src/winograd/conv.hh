/**
 * @file
 * Winograd transformed convolution: forward, backward-data, and weight
 * gradient, for both weight domains the paper discusses:
 *
 *  - spatial weights (Fig 2(a)): parameters are w; W = G w G^T is
 *    recomputed from w and gradients map back via the transform adjoint;
 *  - the Winograd layer (Fig 2(b), reference [29]): parameters are W
 *    themselves and are updated directly in the Winograd domain.
 *
 * All gradients are exact adjoints of the forward linear maps, verified
 * against numerical differentiation in the tests. Backward-data through
 * the adjoint equals the textbook "convolve dy with flipped weights".
 */

#ifndef WINOMC_WINOGRAD_CONV_HH
#define WINOMC_WINOGRAD_CONV_HH

#include "tensor/tensor.hh"
#include "winograd/algo.hh"
#include "winograd/lowprec.hh"
#include "winograd/tiling.hh"

namespace winomc {

/**
 * Transform input feature maps x (B, I, H, W) into Winograd-domain tiles
 * (X = B^T x_patch B per tile) with implicit "same" zero padding.
 */
WinoTiles transformInput(const Tensor &x, const WinogradAlgo &algo);

/**
 * Adjoint of transformInput: overlap-add gradient tiles dX back into a
 * (B, I, h, w) spatial gradient (x_patch grad = B dX B^T).
 */
Tensor transformInputAdjoint(const WinoTiles &dX, const WinogradAlgo &algo,
                             int h, int w);

/** Spatial weights (J, I, r, r) -> Winograd weights W = G w G^T. */
WinoWeights transformWeights(const Tensor &w, const WinogradAlgo &algo);

/** Adjoint of transformWeights: dw = G^T dW G, (J, I, r, r). */
Tensor transformWeightsAdjoint(const WinoWeights &dW,
                               const WinogradAlgo &algo);

/**
 * Element-wise dot products of Equation (2): per uv,
 * Y[uv] (J x BT) = W[uv] (J x I) * X[uv] (I x BT).
 */
WinoTiles elementwiseForward(const WinoTiles &X, const WinoWeights &W);

/** Backward data: dX[uv] (I x BT) = W[uv]^T (I x J) * dY[uv] (J x BT). */
WinoTiles elementwiseBackwardData(const WinoTiles &dY,
                                  const WinoWeights &W);

/**
 * Winograd-domain weight gradient:
 * dW[uv] (J x I) = dY[uv] (J x BT) * X[uv]^T (BT x I).
 */
WinoWeights elementwiseGradWeights(const WinoTiles &dY, const WinoTiles &X);

/** Inverse transform Y tiles -> spatial output (B, J, h, w), cropping. */
Tensor inverseTransform(const WinoTiles &Y, const WinogradAlgo &algo,
                        int h, int w);

/** Adjoint of inverseTransform: dY = A dy_tile A^T per tile. */
WinoTiles inverseTransformAdjoint(const Tensor &dy,
                                  const WinogradAlgo &algo);

// ---------------------------------------------------------------------
// Destination-passing stage kernels
//
// The value-returning stage functions above are thin wrappers over
// these: the caller owns the (pre-shaped) destination, so execution
// plans (winograd/plan.hh) can reuse workspace slabs across batches
// with zero steady-state allocation. Destinations that the kernels
// accumulate into (elementwiseForwardInto, elementwiseBackwardDataInto,
// transformInputAdjointInto) are zero-filled on entry; the others are
// fully assigned. Results are bitwise identical to the value-returning
// forms for any thread count.
// ---------------------------------------------------------------------

void transformInputInto(const Tensor &x, const WinogradAlgo &algo,
                        WinoTiles &out);
/** Spatial size is taken from the pre-shaped dx. */
void transformInputAdjointInto(const WinoTiles &dX,
                               const WinogradAlgo &algo, Tensor &dx);
void transformWeightsInto(const Tensor &w, const WinogradAlgo &algo,
                          WinoWeights &out);
void transformWeightsAdjointInto(const WinoWeights &dW,
                                 const WinogradAlgo &algo, Tensor &dw);
void elementwiseForwardInto(const WinoTiles &X, const WinoWeights &W,
                            WinoTiles &Y);
void elementwiseBackwardDataInto(const WinoTiles &dY,
                                 const WinoWeights &W, WinoTiles &dX);
void elementwiseGradWeightsInto(const WinoTiles &dY, const WinoTiles &X,
                                WinoWeights &dW);
/** Spatial size is taken from the pre-shaped y. */
void inverseTransformInto(const WinoTiles &Y, const WinogradAlgo &algo,
                          Tensor &y);
void inverseTransformAdjointInto(const Tensor &dy,
                                 const WinogradAlgo &algo, WinoTiles &dY);

// ---------------------------------------------------------------------
// Fused tile-strip stage kernels (DESIGN.md §4.11)
//
// Each processes the tile range [t0, t0 + tcnt) of ONE image `b`
// serially — the strip loop in WinoPlan is the parallel unit, so these
// must stay free of parallelFor. Strip scratch tiles (Xs/Ys/dYs/dXs)
// are shaped (alpha, channels, 1, stripTiles >= tcnt); lanes beyond
// tcnt are never read. The arithmetic per element is identical to the
// staged kernels above (same micro-kernels, same blocking, same
// summation order), so a fused pipeline is bitwise identical to the
// staged one at every ISA level.
// ---------------------------------------------------------------------

/** Gather + input-transform one strip of image b into Xs. */
void transformInputStrip(const Tensor &x, const WinogradAlgo &algo,
                         const TileGrid &grid, int b, int t0, int tcnt,
                         WinoTiles &Xs);
/** Ys[uv] = W[uv] * Xs[uv] over the strip's first tcnt lanes. */
void elementwiseForwardStrip(const WinoTiles &Xs, const WinoWeights &W,
                             int tcnt, WinoTiles &Ys);
/** Inverse-transform + store one strip of Ys into image b of y. */
void inverseTransformStrip(const WinoTiles &Ys, const WinogradAlgo &algo,
                           const TileGrid &grid, int b, int t0, int tcnt,
                           Tensor &y);
/** Gather + adjoint-transform one strip of image b of dy into dYs. */
void inverseTransformAdjointStrip(const Tensor &dy,
                                  const WinogradAlgo &algo,
                                  const TileGrid &grid, int b, int t0,
                                  int tcnt, WinoTiles &dYs);
/** dXs[uv] = W[uv]^T * dYs[uv] over the strip's first tcnt lanes. */
void elementwiseBackwardDataStrip(const WinoTiles &dYs,
                                  const WinoWeights &W, int tcnt,
                                  WinoTiles &dXs);
/**
 * Overlap-add one strip of dXs into image b of dx (which the caller
 * zero-fills before the first strip). Tiles scatter in ascending
 * order; callers must process a given image's strips in ascending
 * order, serially, to keep the bitwise contract.
 */
void transformInputAdjointStripAdd(const WinoTiles &dXs,
                                   const WinogradAlgo &algo,
                                   const TileGrid &grid, int b, int t0,
                                   int tcnt, Tensor &dx);

// ---------------------------------------------------------------------
// Sparse + low-precision forward kernels (DESIGN.md §4.15)
//
// The sparse fp32 kernels are bitwise identical to their dense
// counterparts at every ISA level: the activation mask and the weight
// compaction only ever drop terms whose product is an exact ±0, and
// the micro-kernels preserve the dense expression shapes (see
// mk::panelAccumSel). The half kernels store transformed activations
// as 16 bits (software round-to-nearest-even encode, exact decode)
// and accumulate in fp32; they are deterministic per ISA and bitwise
// identical between staged and fused blockings. Caveat: the ±0-drop
// argument needs finite inputs — inf/NaN activations can differ
// (0 * inf), matching the documented error-bound contract.
// ---------------------------------------------------------------------

/** transformInputInto + per-panel activation zero-mask build. The
 *  mask (pre-shaped by the plan) is rebuilt from scratch: each
 *  (channel, image) plane region is cleared by its single writer. */
void transformInputMaskInto(const Tensor &x, const WinogradAlgo &algo,
                            WinoTiles &out, ActMask &mask);

/** Input transform straight into 16-bit storage (mk::kHalfBf16 /
 *  mk::kHalfF16). With a non-null mask, also builds the zero-mask
 *  from the encoded panels. */
void transformInputHalfInto(const Tensor &x, const WinogradAlgo &algo,
                            HalfTiles &out, int halfKind, ActMask *mask);

/** elementwiseForwardInto with zero-skipping: weight-zero and
 *  mask-zero rows are compacted away before the panel kernel. */
void elementwiseForwardSparseInto(const WinoTiles &X,
                                  const WinoWeights &W, WinoTiles &Y,
                                  const ActMask &mask);

/** elementwiseForwardInto over 16-bit activations with fp32
 *  accumulate; a non-null mask additionally enables zero-skipping. */
void elementwiseForwardHalfInto(const HalfTiles &X, const WinoWeights &W,
                                WinoTiles &Y, int halfKind,
                                const ActMask *mask);

/** Strip variants (same contracts as the fused kernels above; the
 *  strip mask is a batch=1, stripTiles-shaped ActMask). */
void transformInputStripMask(const Tensor &x, const WinogradAlgo &algo,
                             const TileGrid &grid, int b, int t0,
                             int tcnt, WinoTiles &Xs, ActMask &mask);
void transformInputStripHalf(const Tensor &x, const WinogradAlgo &algo,
                             const TileGrid &grid, int b, int t0,
                             int tcnt, HalfTiles &Xs, int halfKind,
                             ActMask *mask);
void elementwiseForwardStripSparse(const WinoTiles &Xs,
                                   const WinoWeights &W, int tcnt,
                                   WinoTiles &Ys, const ActMask &mask);
void elementwiseForwardStripHalf(const HalfTiles &Xs,
                                 const WinoWeights &W, int tcnt,
                                 WinoTiles &Ys, int halfKind,
                                 const ActMask *mask);

// ---------------------------------------------------------------------
// High-level convenience wrappers (build a transient execution plan)
// ---------------------------------------------------------------------

/** y = winograd_conv(x, W); W already in the Winograd domain. */
Tensor winogradForward(const Tensor &x, const WinoWeights &W,
                       const WinogradAlgo &algo);

/** dx from dy through the Winograd pipeline adjoint. */
Tensor winogradBackwardData(const Tensor &dy, const WinoWeights &W,
                            const WinogradAlgo &algo, int h, int w);

/** Winograd-layer weight gradient dW from x and dy. */
WinoWeights winogradGradWeights(const Tensor &x, const Tensor &dy,
                                const WinogradAlgo &algo);

/** Reference direct convolution, "same", stride 1 (w: J, I, r, r). */
Tensor directConvForward(const Tensor &x, const Tensor &w);

/** Direct backward data: dx = dy (*) flip(w). */
Tensor directConvBackwardData(const Tensor &dy, const Tensor &w);

/** Direct weight gradient: dw[j,i] = sum_b dy[b,j] (*) x[b,i]. */
Tensor directConvGradWeights(const Tensor &x, const Tensor &dy, int r);

/**
 * Generalized reference direct convolution: arbitrary stride, explicit
 * zero padding, rectangular filters (w: J, I, kh, kw), output
 * (B, J, (H + 2*padH - kh)/strideH + 1, ...). Double-precision
 * accumulation per output element in a fixed (i, ky, kx) order — the
 * parity oracle of the DWM decomposition tests and the execution path
 * of geometries no Winograd candidate covers.
 */
Tensor directConvForwardEx(const Tensor &x, const Tensor &w, int strideH,
                           int strideW, int padH, int padW);

} // namespace winomc

#endif // WINOMC_WINOGRAD_CONV_HH
