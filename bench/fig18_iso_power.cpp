/**
 * @file
 * Figure 18: performance and performance-per-watt with the batch-size
 * restriction lifted for the GPUs - each CNN trains on 8 GPUs at its
 * best-throughput batch (2K-4K in the paper) while the 256-worker NDP
 * system stays at batch 256; both systems draw comparable power.
 */

#include <cmath>
#include <cstdio>

#include "common/table.hh"
#include "gpu/gpu_model.hh"
#include "mpt/network_sim.hh"
#include "workloads/networks.hh"

using namespace winomc;
using namespace winomc::mpt;

int
main()
{
    std::printf("Figure 18: best-batch 8-GPU vs 256-NDP (batch 256), "
                "iso-power\n\n");

    Table t("throughput and efficiency");
    t.header({"network", "GPU batch", "GPU img/s", "GPU W",
              "GPU img/s/W", "NDP img/s", "NDP W", "NDP img/s/W",
              "perf ratio", "eff ratio"});

    SystemParams sp;
    double log_perf = 0.0, log_eff = 0.0;
    int n = 0;
    for (const auto &net : workloads::tableOneNetworks()) {
        int batch = gpu::bestBatchSize(net, 8);
        auto g = gpu::simulateGpuTraining(net, 8, {}, batch);
        auto ndp = simulateNetwork(net, Strategy::WinoMPTPredictDyn, sp);

        double g_eff = g.imagesPerSec / g.powerWatts;
        double n_eff = ndp.imagesPerSec / ndp.averagePowerWatts;
        t.row()
            .cell(net.name)
            .cell(int64_t(batch))
            .cell(g.imagesPerSec, 0)
            .cell(g.powerWatts, 0)
            .cell(g_eff, 2)
            .cell(ndp.imagesPerSec, 0)
            .cell(ndp.averagePowerWatts, 0)
            .cell(n_eff, 2)
            .cell(ndp.imagesPerSec / g.imagesPerSec, 2)
            .cell(n_eff / g_eff, 2);
        log_perf += std::log(ndp.imagesPerSec / g.imagesPerSec);
        log_eff += std::log(n_eff / g_eff);
        ++n;
    }
    t.print();

    std::printf("geomean: perf %.1fx, perf/W %.1fx "
                "(paper: 9.5x perf/W on average; GPU batches 2K-4K)\n",
                std::exp(log_perf / n), std::exp(log_eff / n));
    return 0;
}
