/**
 * @file
 * Tests for the MPT core: Section III-C communication-volume formulas,
 * the task-graph scheduler, the layer/network simulations, and the
 * dynamic-clustering optimizer - including the qualitative claims of
 * the paper (DP flat vs MPT shrinking comm, early-vs-late layer
 * behaviour, MPT speedups at 256 workers).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/metrics.hh"
#include "mpt/clustering.hh"
#include "mpt/comm_volume.hh"
#include "mpt/layer_sim.hh"
#include "mpt/network_sim.hh"
#include "mpt/task_graph.hh"
#include "winograd/algo.hh"
#include "workloads/layers.hh"
#include "workloads/networks.hh"

namespace winomc::mpt {
namespace {

using memnet::ClusterShape;

// ------------------------------------------------------------ TaskGraph

TEST(TaskGraphSched, ChainIsSequential)
{
    TaskGraph g;
    TaskId a = g.addTask("a", 1.0, 0);
    TaskId b = g.addTask("b", 2.0, 0);
    TaskId c = g.addTask("c", 3.0, 0);
    g.addDependency(a, b);
    g.addDependency(b, c);
    EXPECT_DOUBLE_EQ(g.simulate(), 6.0);
    EXPECT_DOUBLE_EQ(g.finishTime(a), 1.0);
    EXPECT_DOUBLE_EQ(g.finishTime(c), 6.0);
}

TEST(TaskGraphSched, IndependentResourcesOverlap)
{
    TaskGraph g;
    g.addTask("compute", 5.0, 0);
    g.addTask("network", 4.0, 1);
    EXPECT_DOUBLE_EQ(g.simulate(), 5.0);
}

TEST(TaskGraphSched, SharedResourceSerializes)
{
    TaskGraph g;
    g.addTask("a", 2.0, 0);
    g.addTask("b", 2.0, 0);
    EXPECT_DOUBLE_EQ(g.simulate(), 4.0);
}

TEST(TaskGraphSched, DiamondDependency)
{
    TaskGraph g;
    TaskId a = g.addTask("a", 1.0, TaskGraph::kNoResource);
    TaskId b = g.addTask("b", 2.0, TaskGraph::kNoResource);
    TaskId c = g.addTask("c", 3.0, TaskGraph::kNoResource);
    TaskId d = g.addTask("d", 1.0, TaskGraph::kNoResource);
    g.addDependency(a, b);
    g.addDependency(a, c);
    g.addDependency(b, d);
    g.addDependency(c, d);
    EXPECT_DOUBLE_EQ(g.simulate(), 5.0); // 1 + max(2,3) + 1
}

TEST(TaskGraphSched, CollectiveOverlapsCompute)
{
    // bprop_2 -> ugrad_2 -> coll_2 (ring); bprop_1 continues on compute
    // while coll_2 runs: the Section VI-C overlap.
    TaskGraph g;
    TaskId b2 = g.addTask("bprop2", 2.0, 0);
    TaskId u2 = g.addTask("ugrad2", 1.0, 0);
    TaskId c2 = g.addTask("coll2", 5.0, 1);
    TaskId b1 = g.addTask("bprop1", 4.0, 0);
    g.addDependency(b2, u2);
    g.addDependency(u2, c2);
    g.addDependency(b2, b1);
    double makespan = g.simulate();
    // coll2 starts at 3 and runs to 8; b1 runs 3..7 in parallel.
    EXPECT_DOUBLE_EQ(makespan, 8.0);
    EXPECT_DOUBLE_EQ(g.finishTime(b1), 7.0);
}

// ---------------------------------------------------------- Comm volume

TEST(CommVolume, DataParallelNearlyFlatWithWorkers)
{
    uint64_t w = 512 * 512 * 9;
    double v64 = dataParallelCommVolume(w, 64).total();
    double v256 = dataParallelCommVolume(w, 256).total();
    EXPECT_NEAR(v256 / v64, 1.0, 0.02); // ~2|w|(p-1)/p
    EXPECT_EQ(dataParallelCommVolume(w, 1).total(), 0.0);
}

TEST(CommVolume, MptShrinksWithWorkersAtSqrtOrganization)
{
    // Fig 7: with Ng = Nc = sqrt(p), per-worker volume falls ~1/sqrt(p).
    ConvSpec spec = workloads::tableTwoLayers()[2]; // Mid-B
    const auto &algo = algoF2x2_3x3();
    double v16 = mptCommVolume(spec, algo, ClusterShape{4, 4}, nullptr)
                     .total();
    double v256 =
        mptCommVolume(spec, algo, ClusterShape{16, 16}, nullptr).total();
    EXPECT_LT(v256, v16);
}

TEST(CommVolume, MptWeightsShrinkByGroups)
{
    ConvSpec spec = workloads::tableTwoLayers()[4]; // Late-B
    const auto &algo = algoF2x2_3x3();
    auto v4 = mptCommVolume(spec, algo, ClusterShape{4, 64}, nullptr);
    auto v16 = mptCommVolume(spec, algo, ClusterShape{16, 16}, nullptr);
    // Weight bytes scale ~1/Ng (ring-length factor differs slightly).
    EXPECT_NEAR(v16.weightBytes / v4.weightBytes, 4.0 / 16.0, 0.05);
}

TEST(CommVolume, CrossoverDpVsMpt)
{
    // Fig 6: for a late layer MPT beats DP on total volume at large p;
    // for the early layer (huge feature maps) MPT's tile traffic makes
    // it worse without dynamic clustering.
    auto layers = workloads::tableTwoLayers();
    const auto &algo = algoF2x2_3x3();

    const ConvSpec &late = layers[4];
    double dp_late =
        dataParallelCommVolume(late.weightElems(), 256).total();
    double mp_late =
        mptCommVolume(late, algo, ClusterShape{16, 16}, nullptr).total();
    EXPECT_LT(mp_late, dp_late);

    const ConvSpec &early = layers[0];
    double dp_early =
        dataParallelCommVolume(early.weightElems(), 256).total();
    double mp_early =
        mptCommVolume(early, algo, ClusterShape{16, 16}, nullptr)
            .total();
    EXPECT_GT(mp_early, dp_early);
}

TEST(CommVolume, PredictionReducesTileTraffic)
{
    ConvSpec spec = workloads::tableTwoLayers()[2];
    const auto &algo = algoF2x2_3x3();
    PredictionParams pp;
    auto plain = mptCommVolume(spec, algo, ClusterShape{16, 16}, nullptr);
    auto pred = mptCommVolume(spec, algo, ClusterShape{16, 16}, &pp);
    EXPECT_LT(pred.tileBytes, plain.tileBytes);
    EXPECT_DOUBLE_EQ(pred.weightBytes, plain.weightBytes);
}

TEST(CommVolume, OneDTransferCheaperThanTwoD)
{
    // Scale factors: 1D predict skips more and sends fewer bits.
    PredictionParams pp;
    EXPECT_LT(gatherScale(pp, memnet::TransferMode::OneD),
              gatherScale(pp, memnet::TransferMode::TwoD));
    EXPECT_LT(scatterScale(pp, memnet::TransferMode::OneD),
              scatterScale(pp, memnet::TransferMode::TwoD));
    EXPECT_EQ(gatherScale(pp, memnet::TransferMode::None), 0.0);
}

// ------------------------------------------------------------ Layer sim

SystemParams
defaultParams()
{
    return SystemParams{};
}

TEST(LayerSim, AllStrategiesProducePositiveTimes)
{
    SystemParams sp = defaultParams();
    for (const auto &spec : workloads::tableTwoLayers()) {
        for (Strategy s :
             {Strategy::DirectDP, Strategy::WinoDP, Strategy::WinoMPT,
              Strategy::WinoMPTPredict, Strategy::WinoMPTPredictDyn}) {
            LayerResult r = simulateLayer(spec, s, sp);
            EXPECT_GT(r.fwd.seconds, 0.0) << spec.name;
            EXPECT_GT(r.bwd.seconds, 0.0) << spec.name;
            EXPECT_GT(r.totalEnergy().total(), 0.0) << spec.name;
        }
    }
}

TEST(LayerSim, PredictionNeverSlower)
{
    SystemParams sp = defaultParams();
    for (const auto &spec : workloads::tableTwoLayers()) {
        double mp = simulateLayer(spec, Strategy::WinoMPT, sp)
                        .totalSeconds();
        double mpp = simulateLayer(spec, Strategy::WinoMPTPredict, sp)
                         .totalSeconds();
        EXPECT_LE(mpp, mp * 1.0001) << spec.name;
    }
}

TEST(LayerSim, DynamicClusteringNeverSlowerThanFixed)
{
    SystemParams sp = defaultParams();
    for (const auto &spec : workloads::tableTwoLayers()) {
        double fixed = simulateLayer(spec, Strategy::WinoMPTPredict, sp)
                           .totalSeconds();
        double dyn = simulateLayer(spec, Strategy::WinoMPTPredictDyn, sp)
                         .totalSeconds();
        EXPECT_LE(dyn, fixed * 1.0001) << spec.name;
    }
}

TEST(LayerSim, EarlyLayerPrefersDataParallelShape)
{
    // Fig 15: the Early layer's tile transfer overwhelms MPT; dynamic
    // clustering configures it as (1, 256).
    SystemParams sp = defaultParams();
    auto early = workloads::tableTwoLayers()[0];
    LayerResult r = simulateLayer(early, Strategy::WinoMPTPredictDyn, sp);
    EXPECT_EQ(r.shape.ng, 1) << r.shape.toString();

    double dp = simulateLayer(early, Strategy::WinoDP, sp).totalSeconds();
    double mp = simulateLayer(early, Strategy::WinoMPT, sp)
                    .totalSeconds();
    EXPECT_GT(mp, dp); // plain MPT is a loss on the early layer
}

TEST(LayerSim, LateLayerPrefersManyGroups)
{
    SystemParams sp = defaultParams();
    auto late = workloads::tableTwoLayers()[4];
    LayerResult r = simulateLayer(late, Strategy::WinoMPTPredictDyn, sp);
    EXPECT_GT(r.shape.ng, 1) << r.shape.toString();

    double dp = simulateLayer(late, Strategy::WinoDP, sp).totalSeconds();
    double mp = simulateLayer(late, Strategy::WinoMPTPredict, sp)
                    .totalSeconds();
    EXPECT_GT(dp / mp, 3.0) << "late layers show the biggest MPT win";
}

TEST(LayerSim, GeomeanSpeedupNearPaper)
{
    // Fig 15: w_mp++ achieves ~2.74x over w_dp averaged over the five
    // layers. Our substrate differs, so accept a generous band.
    SystemParams sp = defaultParams();
    double log_sum = 0.0;
    int n = 0;
    for (const auto &spec : workloads::tableTwoLayers()) {
        double dp = simulateLayer(spec, Strategy::WinoDP, sp)
                        .totalSeconds();
        double best = simulateLayer(spec, Strategy::WinoMPTPredictDyn,
                                    sp).totalSeconds();
        log_sum += std::log(dp / best);
        ++n;
    }
    double geomean = std::exp(log_sum / n);
    EXPECT_GT(geomean, 1.2);
    EXPECT_LT(geomean, 6.0);
}

TEST(LayerSim, FiveByFiveCutsWeightCollectiveMore)
{
    // Fig 16's mechanism: for 5x5 weights MPT reduces the weight-
    // gradient communication even more than for 3x3 (the spatial |w|
    // grows 25/9 while the MPT group slice grows only 36/16), so the
    // collective-time advantage of MPT over w_dp widens.
    SystemParams sp = defaultParams();
    auto l3 = workloads::tableTwoLayers()[4];
    auto l5 = workloads::tableTwoLayers5x5()[4];
    auto shape = memnet::ClusterShape::groups16(sp.workers);

    double adv3 =
        simulateLayer(l3, Strategy::WinoDP, sp).collectiveSeconds /
        simulateLayerWithShape(l3, Strategy::WinoMPTPredict, sp, shape)
            .collectiveSeconds;
    double adv5 =
        simulateLayer(l5, Strategy::WinoDP, sp).collectiveSeconds /
        simulateLayerWithShape(l5, Strategy::WinoMPTPredict, sp, shape)
            .collectiveSeconds;
    EXPECT_GT(adv3, 1.0);
    EXPECT_GT(adv5, adv3);
}

TEST(LayerSim, FiveByFiveSpeedupComparable)
{
    // End-to-end our 5x5 geomean lands near the 3x3 one rather than
    // above it (see EXPERIMENTS.md for the deviation discussion); both
    // must remain clear MPT wins.
    SystemParams sp = defaultParams();
    auto l3 = workloads::tableTwoLayers();
    auto l5 = workloads::tableTwoLayers5x5();
    double s3 = 0, s5 = 0;
    for (size_t k = 0; k < l3.size(); ++k) {
        s3 += std::log(
            simulateLayer(l3[k], Strategy::WinoDP, sp).totalSeconds() /
            simulateLayer(l3[k], Strategy::WinoMPTPredictDyn, sp)
                .totalSeconds());
        s5 += std::log(
            simulateLayer(l5[k], Strategy::WinoDP, sp).totalSeconds() /
            simulateLayer(l5[k], Strategy::WinoMPTPredictDyn, sp)
                .totalSeconds());
    }
    EXPECT_GT(std::exp(s3 / double(l3.size())), 1.2);
    EXPECT_GT(std::exp(s5 / double(l5.size())), 1.2);
}

TEST(LayerSim, MptCutsDramEnergyViaWeightPartitioning)
{
    // Section VII-B: MPT stores only a weight slice per worker and
    // reuses inputs more, cutting DRAM energy on weight-heavy layers.
    SystemParams sp = defaultParams();
    auto late = workloads::tableTwoLayers()[4];
    auto dp = simulateLayer(late, Strategy::WinoDP, sp);
    auto mp = simulateLayer(late, Strategy::WinoMPT, sp);
    EXPECT_LT(mp.totalEnergy().dramJ, dp.totalEnergy().dramJ);
}

// ----------------------------------------------------------- Clustering

TEST(Clustering, EvaluatesAllShapes)
{
    SystemParams sp = defaultParams();
    auto choices = evaluateShapes(workloads::tableTwoLayers()[2], sp);
    ASSERT_EQ(choices.size(), 3u);
    EXPECT_LE(choices[0].seconds, choices[1].seconds);
    EXPECT_LE(choices[1].seconds, choices[2].seconds);
}

TEST(Clustering, ChoiceShiftsFromDpToGroupsAcrossDepth)
{
    SystemParams sp = defaultParams();
    auto layers = workloads::tableTwoLayers();
    int early_ng = chooseShape(layers[0], sp).ng;
    int late_ng = chooseShape(layers[4], sp).ng;
    EXPECT_EQ(early_ng, 1);
    EXPECT_GE(late_ng, 4);
}

// ---------------------------------------------------------- Network sim

TEST(NetworkSim, IterationCoversForward)
{
    SystemParams sp = defaultParams();
    auto net = workloads::resnet34();
    NetworkResult r = simulateNetwork(net, Strategy::WinoDP, sp);
    EXPECT_GT(r.fwdSeconds, 0.0);
    EXPECT_GT(r.iterationSeconds, r.fwdSeconds);
    EXPECT_GT(r.imagesPerSec, 0.0);
    EXPECT_EQ(r.layers.size(), net.layers.size());
}

TEST(NetworkSim, MptSpeedsUpAllThreeCnns)
{
    // Fig 17: w_mp++ improves over w_dp by ~2.7x at 256 workers; our
    // substrate lands in the 2-8x band across the three CNNs.
    SystemParams sp = defaultParams();
    for (const auto &net : workloads::tableOneNetworks()) {
        double dp = simulateNetwork(net, Strategy::WinoDP, sp)
                        .iterationSeconds;
        double pp = simulateNetwork(net, Strategy::WinoMPTPredictDyn, sp)
                        .iterationSeconds;
        double speedup = dp / pp;
        EXPECT_GT(speedup, 1.8) << net.name;
        EXPECT_LT(speedup, 10.0) << net.name;
    }
}

TEST(NetworkSim, MptScalesFarBetterThanDp)
{
    // Fig 17: 256-worker speedups over 1 NDP - sub-linear for w_dp,
    // near-linear for w_mp++ (paper: 71x vs 191x).
    SystemParams sp = defaultParams();
    SystemParams one = sp;
    one.workers = 1;
    auto net = workloads::fractalNet();
    double base = simulateNetwork(net, Strategy::WinoDP, one)
                      .iterationSeconds;
    double dp = simulateNetwork(net, Strategy::WinoDP, sp)
                    .iterationSeconds;
    double pp = simulateNetwork(net, Strategy::WinoMPTPredictDyn, sp)
                    .iterationSeconds;
    double dp_scal = base / dp;
    double pp_scal = base / pp;
    EXPECT_LT(dp_scal, 100.0);
    EXPECT_GT(pp_scal, 120.0);
    EXPECT_GT(pp_scal / dp_scal, 2.0);
}

TEST(NetworkSim, ThroughputMonotoneInWorkersForMpt)
{
    SystemParams sp = defaultParams();
    auto net = workloads::wideResnet40_10();
    double prev = 0.0;
    for (int p : {16, 64, 256}) {
        SystemParams s = sp;
        s.workers = p;
        double rate = simulateNetwork(net, Strategy::WinoMPTPredictDyn,
                                      s).imagesPerSec;
        EXPECT_GT(rate, prev) << "p=" << p;
        prev = rate;
    }
}

TEST(NetworkSim, OverlapBetweenBoundsHolds)
{
    // The task-graph makespan must be at least the serial compute
    // chain (fwd + bprop + ugrad on one compute resource) and at most
    // that chain plus every collective run serially.
    SystemParams sp = defaultParams();
    auto net = workloads::wideResnet40_10();
    NetworkResult r = simulateNetwork(net, Strategy::WinoMPTPredictDyn,
                                      sp);
    double chain = 0.0, colls = 0.0;
    for (const auto &lr : r.layers) {
        chain += lr.fwd.seconds + lr.bpropSeconds +
                 lr.ugradComputeSeconds;
        colls += lr.collectiveSeconds;
    }
    EXPECT_GE(r.iterationSeconds, chain * 0.999);
    EXPECT_LE(r.iterationSeconds, chain + colls + 1e-6);
    // Collectives overlap bprop, so the makespan should sit strictly
    // below the fully-serial bound on a deep network.
    EXPECT_LT(r.iterationSeconds, chain + colls * 0.9);
}

// ------------------------------------------------------ Introspection

/// The exact-sum invariant of the reported breakdown: the four
/// components sum to the end-to-end layer time, bit-for-bit within
/// rounding, for every layer and strategy.
TEST(LayerSim, BreakdownSumsExactlyToTotal)
{
    SystemParams sp = defaultParams();
    for (const auto &spec : workloads::tableTwoLayers()) {
        for (Strategy s :
             {Strategy::DirectDP, Strategy::WinoDP, Strategy::WinoMPT,
              Strategy::WinoMPTPredict, Strategy::WinoMPTPredictDyn}) {
            LayerResult r = simulateLayer(spec, s, sp);
            LayerBreakdown b = layerBreakdown(r);
            EXPECT_GE(b.computeSec, 0.0) << spec.name;
            EXPECT_GE(b.intraCommSec, 0.0) << spec.name;
            EXPECT_GE(b.interCommSec, 0.0) << spec.name;
            EXPECT_GE(b.idleSec, 0.0) << spec.name;
            EXPECT_DOUBLE_EQ(b.totalSec, r.totalSeconds())
                << spec.name;
            const double sum = b.computeSec + b.intraCommSec +
                               b.interCommSec + b.idleSec;
            EXPECT_NEAR(sum, b.totalSec, 1e-12 + 1e-9 * b.totalSec)
                << spec.name << " " << strategyName(s);
        }
    }
}

/// Phase introspection fields are populated and physically sensible:
/// systolic utilization in (0, 1], non-negative DMA stall, idle-link
/// energy a proper subcomponent of link energy, and the traffic split
/// seeing both P2P tile traffic and collective gradient traffic under
/// the model-parallel strategy.
TEST(LayerSim, PhaseIntrospectionPopulated)
{
    SystemParams sp = defaultParams();
    const auto layers = workloads::tableTwoLayers();
    for (const auto &spec : layers) {
        LayerResult r = simulateLayer(spec, Strategy::WinoMPT, sp);
        for (const PhaseResult *p : {&r.fwd, &r.bwd}) {
            EXPECT_GT(p->systolicUtil, 0.0) << spec.name;
            EXPECT_LE(p->systolicUtil, 1.0) << spec.name;
            EXPECT_GT(p->systolicSec, 0.0) << spec.name;
            EXPECT_GE(p->dramSec, 0.0) << spec.name;
            EXPECT_GE(p->dmaStallSec, 0.0) << spec.name;
        }
        auto e = r.totalEnergy();
        EXPECT_GE(e.linkIdleJ, 0.0) << spec.name;
        EXPECT_LE(e.linkIdleJ, e.linkJ * (1.0 + 1e-9)) << spec.name;
        EXPECT_GT(r.p2pLinkBytes, 0.0) << spec.name;
        EXPECT_GT(r.collectiveLinkBytes, 0.0) << spec.name;
    }
}

/// The dynamic strategy exports its *chosen* configuration under its
/// own metric namespace (mpt.w_mp++.*) - one export, not one per
/// candidate shape explored - and the breakdown it publishes passes
/// the same exact-sum check winomc-report applies.
TEST(LayerSim, DynStrategyExportsUnderOwnName)
{
    const bool was = metrics::enabled();
    metrics::setEnabled(true);
    metrics::reset();

    SystemParams sp = defaultParams();
    const auto layers = workloads::tableTwoLayers();
    LayerResult r =
        simulateLayer(layers[0], Strategy::WinoMPTPredictDyn, sp);

    auto snap = metrics::snapshot();
    auto get = [&](const std::string &name) -> const metrics::Sample * {
        for (const auto &s : snap)
            if (s.name == name)
                return &s;
        return nullptr;
    };
    const std::string base =
        "mpt." + strategyName(Strategy::WinoMPTPredictDyn);
    const auto *layers_count = get(base + ".layers");
    ASSERT_NE(layers_count, nullptr);
    EXPECT_DOUBLE_EQ(layers_count->value, 1.0); // chosen config only
    const auto *total = get(base + ".breakdown.total_sec");
    ASSERT_NE(total, nullptr);
    EXPECT_DOUBLE_EQ(total->totalSec, r.totalSeconds());
    const auto *comp = get(base + ".breakdown.compute_sec");
    const auto *intra = get(base + ".breakdown.intra_comm_sec");
    const auto *inter = get(base + ".breakdown.inter_comm_sec");
    const auto *idle = get(base + ".breakdown.idle_sec");
    ASSERT_TRUE(comp && intra && inter && idle);
    EXPECT_NEAR(comp->totalSec + intra->totalSec + inter->totalSec +
                    idle->totalSec,
                total->totalSec, 1e-9 * total->totalSec + 1e-12);
    // No stray exports from the explored-but-rejected shapes.
    for (const auto &s : snap)
        EXPECT_EQ(s.name.rfind("mpt.w_mp.", 0), std::string::npos)
            << s.name;

    metrics::reset();
    metrics::setEnabled(was);
}

TEST(NetworkSim, DeterministicAcrossRuns)
{
    SystemParams sp = defaultParams();
    auto net = workloads::resnet34();
    NetworkResult a = simulateNetwork(net, Strategy::WinoMPT, sp);
    NetworkResult b = simulateNetwork(net, Strategy::WinoMPT, sp);
    EXPECT_DOUBLE_EQ(a.iterationSeconds, b.iterationSeconds);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(NetworkSim, PowerInPlausibleRange)
{
    // The paper quotes 1800-2600 W for both systems; our constants are
    // substitutes, so accept a wide band around it.
    SystemParams sp = defaultParams();
    auto net = workloads::resnet34();
    NetworkResult r = simulateNetwork(net, Strategy::WinoMPTPredictDyn,
                                      sp);
    EXPECT_GT(r.averagePowerWatts, 500.0);
    EXPECT_LT(r.averagePowerWatts, 8000.0);
}

} // namespace
} // namespace winomc::mpt
