file(REMOVE_RECURSE
  "CMakeFiles/mpt_layer_explorer.dir/mpt_layer_explorer.cpp.o"
  "CMakeFiles/mpt_layer_explorer.dir/mpt_layer_explorer.cpp.o.d"
  "mpt_layer_explorer"
  "mpt_layer_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpt_layer_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
