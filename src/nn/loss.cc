#include "nn/loss.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace winomc::nn {

LossResult
softmaxCrossEntropy(const Tensor &logits, const std::vector<int> &labels)
{
    const int B = logits.n();
    const int C = logits.w();
    winomc_assert(logits.c() == 1 && logits.h() == 1,
                  "logits must be (B,1,1,C)");
    winomc_assert(int(labels.size()) == B, "labels/batch mismatch");

    LossResult res;
    res.dlogits = Tensor(B, 1, 1, C);
    res.loss = 0.0;
    res.correct = 0;

    for (int b = 0; b < B; ++b) {
        winomc_assert(labels[size_t(b)] >= 0 && labels[size_t(b)] < C,
                      "label out of range");
        float mx = logits.at(b, 0, 0, 0);
        int arg = 0;
        for (int c = 1; c < C; ++c) {
            if (logits.at(b, 0, 0, c) > mx) {
                mx = logits.at(b, 0, 0, c);
                arg = c;
            }
        }
        if (arg == labels[size_t(b)])
            ++res.correct;

        double denom = 0.0;
        for (int c = 0; c < C; ++c)
            denom += std::exp(double(logits.at(b, 0, 0, c)) - mx);
        double logden = std::log(denom) + mx;
        res.loss += logden - logits.at(b, 0, 0, labels[size_t(b)]);

        for (int c = 0; c < C; ++c) {
            double p = std::exp(double(logits.at(b, 0, 0, c)) - logden);
            double grad = p - (c == labels[size_t(b)] ? 1.0 : 0.0);
            res.dlogits.at(b, 0, 0, c) = float(grad / B);
        }
    }
    res.loss /= B;
    return res;
}

} // namespace winomc::nn
