#include "common/parallel.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "common/env.hh"
#include "common/logging.hh"

namespace winomc {

namespace {

/**
 * True while this thread is executing a parallelFor chunk; nested calls
 * see it and degrade to inline serial execution.
 */
thread_local bool tlsInParallelRegion = false;

/** Chunks per thread: more gives better load balance, more overhead. */
constexpr std::int64_t kChunksPerThread = 4;

} // namespace

int
parseThreadCount(const char *str)
{
    return int(env::parsePositiveInt("WINOMC_THREADS thread count", str,
                                     kMaxThreadCount));
}

int
defaultThreadCount()
{
    if (int v = parseThreadCount(std::getenv("WINOMC_THREADS")))
        return v;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? int(hw) : 1;
}

/**
 * One parallelFor invocation. Chunk c covers
 * [begin + c*chunkSize, min(end, begin + (c+1)*chunkSize)).
 * Workers (and the poster) claim chunk indices from `next`; the poster
 * waits until `completed` reaches `count`.
 */
struct ThreadPool::Job
{
    const RangeFn *fn = nullptr;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t chunkSize = 1;
    std::int64_t count = 0;
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> completed{0};
    std::mutex doneMu;
    std::condition_variable doneCv;
    std::mutex errMu;
    std::exception_ptr error;
};

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(int threads)
{
    nthreads = threads > 0 ? std::min(threads, kMaxThreadCount)
                           : defaultThreadCount();
    startWorkers();
}

ThreadPool::~ThreadPool()
{
    stopWorkers();
}

void
ThreadPool::startWorkers()
{
    // nthreads includes the caller; spawn nthreads - 1 workers. A pool
    // of one thread spawns nothing and runs everything inline.
    workers.reserve(size_t(std::max(0, nthreads - 1)));
    for (int t = 0; t < nthreads - 1; ++t)
        workers.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
    workers.clear();
    std::lock_guard<std::mutex> lk(mu);
    stopping = false;
    job.reset();
}

void
ThreadPool::setThreadCount(int threads)
{
    winomc_assert(!tlsInParallelRegion,
                  "setThreadCount called from inside a parallelFor body");
    if (threads <= 0)
        threads = defaultThreadCount();
    if (threads > kMaxThreadCount) {
        winomc_warn("thread count ", threads, " clamped to ",
                    kMaxThreadCount);
        threads = kMaxThreadCount;
    }
    std::lock_guard<std::mutex> post(postMu);
    if (threads == nthreads)
        return;
    stopWorkers();
    nthreads = threads;
    startWorkers();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        cv.wait(lk, [&] { return stopping || jobSeq != seen; });
        if (stopping)
            return;
        seen = jobSeq;
        std::shared_ptr<Job> j = job;
        lk.unlock();
        if (j)
            runJob(*j);
        lk.lock();
    }
}

void
ThreadPool::runJob(Job &j)
{
    bool saved = tlsInParallelRegion;
    tlsInParallelRegion = true;
    std::int64_t c;
    while ((c = j.next.fetch_add(1, std::memory_order_relaxed)) < j.count) {
        const std::int64_t lo = j.begin + c * j.chunkSize;
        const std::int64_t hi = std::min(j.end, lo + j.chunkSize);
        try {
            (*j.fn)(lo, hi);
        } catch (...) {
            std::lock_guard<std::mutex> g(j.errMu);
            if (!j.error)
                j.error = std::current_exception();
        }
        if (j.completed.fetch_add(1) + 1 == j.count) {
            std::lock_guard<std::mutex> g(j.doneMu);
            j.doneCv.notify_all();
        }
    }
    tlsInParallelRegion = saved;
}

void
ThreadPool::parallelFor(std::int64_t begin, std::int64_t end,
                        std::int64_t grainSize, const RangeFn &fn)
{
    if (end <= begin)
        return;
    const std::int64_t n = end - begin;
    const std::int64_t grain = std::max<std::int64_t>(1, grainSize);
    if (nthreads <= 1 || tlsInParallelRegion || n <= grain) {
        fn(begin, end);
        return;
    }

    auto j = std::make_shared<Job>();
    j->fn = &fn;
    j->begin = begin;
    j->end = end;
    j->chunkSize = std::max(
        grain, (n + nthreads * kChunksPerThread - 1) /
                   (nthreads * kChunksPerThread));
    j->count = (n + j->chunkSize - 1) / j->chunkSize;
    if (j->count <= 1) {
        fn(begin, end);
        return;
    }

    std::lock_guard<std::mutex> post(postMu);
    {
        std::lock_guard<std::mutex> lk(mu);
        job = j;
        ++jobSeq;
    }
    cv.notify_all();
    runJob(*j); // the posting thread works too
    {
        std::unique_lock<std::mutex> lk(j->doneMu);
        j->doneCv.wait(lk, [&] {
            return j->completed.load() == j->count;
        });
    }
    {
        std::lock_guard<std::mutex> lk(mu);
        if (job == j)
            job.reset();
    }
    if (j->error)
        std::rethrow_exception(j->error);
}

void
parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grainSize,
            const ThreadPool::RangeFn &fn)
{
    ThreadPool::global().parallelFor(begin, end, grainSize, fn);
}

} // namespace winomc
