file(REMOVE_RECURSE
  "libwinomc_mpt.a"
)
