#include "common/logging.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <exception>
#include <mutex>

#include "common/metrics.hh"
#include "common/trace.hh"

namespace winomc {

namespace {

constexpr int kLevelUnresolved = -1;

/** Resolved verbosity; kLevelUnresolved until the first log call (or
 *  setLogLevel) so WINOMC_LOG_LEVEL is honored no matter which static
 *  initializer logs first. */
std::atomic<int> gLogLevel{kLevelUnresolved};

int
resolveLevel()
{
    int lvl = gLogLevel.load(std::memory_order_relaxed);
    if (lvl != kLevelUnresolved)
        return lvl;
    // No lock: two racing threads both parse the same env var and
    // store the same value.
    lvl = parseLogLevel(std::getenv("WINOMC_LOG_LEVEL"));
    gLogLevel.store(lvl, std::memory_order_relaxed);
    return lvl;
}

/** Small dense id of the calling thread — logging keeps its own
 *  counter (the trace recorder's tids are a separate numbering). */
int
logTid()
{
    static std::atomic<int> next{0};
    thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

/**
 * One formatted line: "HH:MM:SS.mmm [tN] <tag>: <msg>". A single
 * fprintf keeps lines from interleaving mid-record across threads
 * (POSIX stdio locks per call).
 */
void
emitLine(std::FILE *to, const char *tag, const std::string &msg)
{
    const auto now = std::chrono::system_clock::now();
    const std::time_t sec = std::chrono::system_clock::to_time_t(now);
    const int ms = int(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count() %
        1000);
    std::tm tm{};
#if defined(_WIN32)
    localtime_s(&tm, &sec);
#else
    localtime_r(&sec, &tm);
#endif
    std::fprintf(to, "%02d:%02d:%02d.%03d [t%d] %s: %s\n", tm.tm_hour,
                 tm.tm_min, tm.tm_sec, ms, logTid(), tag, msg.c_str());
}

/** Guard so a crash inside the flush cannot recurse forever. */
std::atomic<bool> gFlushing{false};

[[noreturn]] void
terminateHandler()
{
    // An uncaught exception (or a violated noexcept) is about to kill
    // the process: save what the telemetry plane has.
    emitLine(stderr, "fatal", "std::terminate called; flushing "
                              "telemetry before abort");
    flushTelemetry();
    std::abort();
}

/** Installs the terminate handler once, at static-init time of
 *  whichever binary links logging (everything does). */
struct TerminateInit
{
    TerminateInit() { std::set_terminate(terminateHandler); }
};
TerminateInit terminateInit;

} // namespace

void
setLogLevel(int level)
{
    gLogLevel.store(level, std::memory_order_relaxed);
}

int
logLevel()
{
    return resolveLevel();
}

int
parseLogLevel(const char *str)
{
    if (!str || !*str)
        return 2;
    std::string s;
    for (const char *p = str; *p; ++p)
        if (!std::isspace(static_cast<unsigned char>(*p)))
            s += char(std::tolower(static_cast<unsigned char>(*p)));
    if (s == "error")
        return 0;
    if (s == "warn" || s == "warning")
        return 1;
    if (s == "info")
        return 2;
    if (s == "debug")
        return 3;
    // Warn directly (not winomc_warn: we are resolving the level that
    // decides whether warnings print — a bad knob must always show).
    emitLine(stderr, "warn",
             detail::concatMessage("ignoring unrecognized "
                                   "WINOMC_LOG_LEVEL '", str,
                                   "' (want debug|info|warn|error)"));
    return 2;
}

void
flushTelemetry() noexcept
{
    if (gFlushing.exchange(true))
        return; // already flushing (re-entered from a flush failure)
    try {
        trace::flushIfConfigured();
        metrics::dumpIfConfigured();
    } catch (...) {
        // Best-effort only: the process is already dying.
    }
    gFlushing.store(false);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitLine(stderr, "panic",
             concatMessage(msg, "\n  @ ", file, ":", line));
    flushTelemetry();
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emitLine(stderr, "fatal",
             concatMessage(msg, "\n  @ ", file, ":", line));
    flushTelemetry();
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (resolveLevel() >= 1)
        emitLine(stderr, "warn", msg);
}

void
informImpl(const std::string &msg)
{
    if (resolveLevel() >= 2)
        emitLine(stdout, "info", msg);
}

void
debugImpl(const std::string &msg)
{
    if (resolveLevel() >= 3)
        emitLine(stderr, "debug", msg);
}

} // namespace detail
} // namespace winomc
