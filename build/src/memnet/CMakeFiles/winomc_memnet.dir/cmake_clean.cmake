file(REMOVE_RECURSE
  "CMakeFiles/winomc_memnet.dir/cluster.cc.o"
  "CMakeFiles/winomc_memnet.dir/cluster.cc.o.d"
  "CMakeFiles/winomc_memnet.dir/collective.cc.o"
  "CMakeFiles/winomc_memnet.dir/collective.cc.o.d"
  "CMakeFiles/winomc_memnet.dir/link_model.cc.o"
  "CMakeFiles/winomc_memnet.dir/link_model.cc.o.d"
  "CMakeFiles/winomc_memnet.dir/message_sim.cc.o"
  "CMakeFiles/winomc_memnet.dir/message_sim.cc.o.d"
  "CMakeFiles/winomc_memnet.dir/pipeline.cc.o"
  "CMakeFiles/winomc_memnet.dir/pipeline.cc.o.d"
  "CMakeFiles/winomc_memnet.dir/reduce_engine.cc.o"
  "CMakeFiles/winomc_memnet.dir/reduce_engine.cc.o.d"
  "libwinomc_memnet.a"
  "libwinomc_memnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_memnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
