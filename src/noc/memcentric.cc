#include "noc/memcentric.hh"

#include "common/logging.hh"

namespace winomc::noc {

MemCentricTopology::MemCentricTopology(int groups, int per_group)
    : ng(groups), nc(per_group)
{
    winomc_assert(groups >= 4 && per_group >= 2,
                  "memcentric needs >= 4 groups and >= 2 per group");
    k = 2;
    while (k * k < groups)
        ++k;
    winomc_assert(k * k == groups,
                  "group count must be square for the 2D butterfly, "
                  "got ", groups);
}

int
MemCentricTopology::ports() const
{
    // Workers use ring(2) + fbfly(2(k-1)) + host(1); the host router
    // needs one port per group. Uniform port count = max of both.
    int worker_ports = 2 + fbflyPorts() + 1;
    return worker_ports > ng ? worker_ports : ng;
}

int
MemCentricTopology::fbflyNeighbor(int group, int p) const
{
    int row = rowOf(group), col = colOf(group);
    if (p < k - 1) {
        int other = p < col ? p : p + 1;
        return row * k + other;
    }
    int q = p - (k - 1);
    int other = q < row ? q : q + 1;
    return other * k + col;
}

int
MemCentricTopology::fbflyRoute(int group, int dst_group) const
{
    int gcol = colOf(group), dcol = colOf(dst_group);
    int grow = rowOf(group), drow = rowOf(dst_group);
    if (gcol != dcol)
        return dcol < gcol ? dcol : dcol - 1;
    winomc_assert(grow != drow, "fbfly route to self");
    return (k - 1) + (drow < grow ? drow : drow - 1);
}

int
MemCentricTopology::neighbor(int node, int port) const
{
    if (node == hostNode())
        return port < ng ? workerAt(port, 0) : -1;

    const int g = groupOf(node), i = indexOf(node);
    if (port == ringCwPort())
        return workerAt(g, (i + 1) % nc);
    if (port == ringCcwPort())
        return workerAt(g, (i + nc - 1) % nc);
    if (port >= fbflyPortBase() && port < fbflyPortBase() + fbflyPorts())
        return workerAt(fbflyNeighbor(g, port - fbflyPortBase()), i);
    if (port == hostPort())
        return i == 0 ? hostNode() : -1;
    return -1;
}

int
MemCentricTopology::peerPort(int node, int port) const
{
    if (node == hostNode())
        return hostPort(); // enters the group head's host port
    const int g = groupOf(node);
    if (port == ringCwPort())
        return ringCcwPort();
    if (port == ringCcwPort())
        return ringCwPort();
    if (port >= fbflyPortBase() &&
        port < fbflyPortBase() + fbflyPorts()) {
        int peer_g = fbflyNeighbor(g, port - fbflyPortBase());
        return fbflyPortBase() + fbflyRoute(peer_g, g);
    }
    if (port == hostPort())
        return g; // host's port toward this group
    winomc_panic("bad memcentric port ", port, " at node ", node);
}

int
MemCentricTopology::route(int cur, int dst) const
{
    winomc_assert(cur != dst, "routing to self");
    winomc_assert(dst >= 0 && dst <= hostNode(), "bad destination");

    if (cur == hostNode())
        return groupOf(dst); // down the host link to dst's group head

    const int g = groupOf(cur), i = indexOf(cur);
    if (dst == hostNode()) {
        // Ring to the group head, then the host link.
        if (i == 0)
            return hostPort();
        int fwd = (0 - i + nc) % nc;
        return fwd <= nc - fwd ? ringCwPort() : ringCcwPort();
    }

    const int dg = groupOf(dst), di = indexOf(dst);
    if (i != di) {
        // Dimension order: fix the in-group index over the ring first.
        int fwd = (di - i + nc) % nc;
        return fwd <= nc - fwd ? ringCwPort() : ringCcwPort();
    }
    winomc_assert(g != dg, "inconsistent route state");
    return fbflyPortBase() + fbflyRoute(g, dg);
}

int
MemCentricTopology::nextVc(int node, int out_port, int cur_vc) const
{
    if (node == hostNode())
        return cur_vc;
    const int i = indexOf(node);
    // Per-group ring dateline between index nc-1 and 0.
    bool crossing = (i == nc - 1 && out_port == ringCwPort()) ||
                    (i == 0 && out_port == ringCcwPort());
    return crossing ? 1 : cur_vc;
}

} // namespace winomc::noc
