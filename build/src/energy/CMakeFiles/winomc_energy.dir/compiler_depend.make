# Empty compiler generated dependencies file for winomc_energy.
# This may be replaced when dependencies are built.
