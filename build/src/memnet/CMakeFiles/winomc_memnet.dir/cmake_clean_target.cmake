file(REMOVE_RECURSE
  "libwinomc_memnet.a"
)
