/**
 * @file
 * SIMD micro-kernel layer tests: runtime ISA dispatch (env parsing,
 * fallback ladder, garbage rejection), scalar-vs-vector numerical
 * parity at both the primitive and the full-pipeline level (odd
 * shapes exercising the masked tails), bitwise contracts (ReLU,
 * pairwise multiply, AvgPool2 row), and per-ISA bitwise invariance
 * across thread counts.
 *
 * The scalar table is the parity oracle: it is compiled with the same
 * flags as the legacy kernels it replaced, so "scalar == vector within
 * ULP bound" here transitively checks the vector paths against the
 * pre-dispatch numerics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"
#include "winograd/microkernel.hh"

using namespace winomc;

namespace {

std::vector<float>
randomVec(std::size_t n, unsigned seed, float lo = -1.0f,
          float hi = 1.0f)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (float &x : v)
        x = lo + (hi - lo) * rng.uniform();
    return v;
}

/** Every ISA level the dispatcher can actually deliver on this host:
 *  always Scalar, plus whatever resolveIsa() keeps of the others. */
std::vector<mk::Isa>
usableIsas()
{
    std::vector<mk::Isa> out = {mk::Isa::Scalar};
    for (mk::Isa isa :
         {mk::Isa::Sse2, mk::Isa::Avx2, mk::Isa::Avx512})
        if (mk::resolveIsa(isa) == isa)
            out.push_back(isa);
    return out;
}

/** Restores Auto dispatch (and the env knob) after each test so test
 *  order cannot leak a pinned ISA into unrelated tests. */
class SimdTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        unsetenv("WINOMC_ISA");
        mk::setIsa(mk::Isa::Auto);
        ThreadPool::global().setThreadCount(defaultThreadCount());
    }
};

// ------------------------------------------------------------------
// Knob parsing and the fallback ladder
// ------------------------------------------------------------------

TEST_F(SimdTest, ParseIsaAcceptsKnownNamesCaseAndSpaceInsensitive)
{
    EXPECT_EQ(mk::parseIsa("auto"), mk::Isa::Auto);
    EXPECT_EQ(mk::parseIsa("scalar"), mk::Isa::Scalar);
    EXPECT_EQ(mk::parseIsa("sse2"), mk::Isa::Sse2);
    EXPECT_EQ(mk::parseIsa("avx2"), mk::Isa::Avx2);
    EXPECT_EQ(mk::parseIsa("avx512"), mk::Isa::Avx512);
    EXPECT_EQ(mk::parseIsa("  AVX2 \n"), mk::Isa::Avx2);
    EXPECT_EQ(mk::parseIsa("Scalar"), mk::Isa::Scalar);
}

TEST_F(SimdTest, ParseIsaRejectsGarbageToAuto)
{
    EXPECT_EQ(mk::parseIsa(nullptr), mk::Isa::Auto);
    EXPECT_EQ(mk::parseIsa(""), mk::Isa::Auto);
    EXPECT_EQ(mk::parseIsa("   "), mk::Isa::Auto);
    EXPECT_EQ(mk::parseIsa("fastest"), mk::Isa::Auto);
    EXPECT_EQ(mk::parseIsa("avx9999"), mk::Isa::Auto);
    EXPECT_EQ(mk::parseIsa("512"), mk::Isa::Auto);
    EXPECT_EQ(mk::parseIsa("avx2 avx512"), mk::Isa::Auto);
}

TEST_F(SimdTest, ResolveIsaNeverEscalatesAndScalarIsFixed)
{
    EXPECT_EQ(mk::resolveIsa(mk::Isa::Scalar), mk::Isa::Scalar);
    EXPECT_EQ(mk::resolveIsa(mk::Isa::Auto), mk::highestSupported());
    // A requested level either sticks or falls DOWN the ladder.
    for (mk::Isa isa :
         {mk::Isa::Sse2, mk::Isa::Avx2, mk::Isa::Avx512}) {
        mk::Isa got = mk::resolveIsa(isa);
        EXPECT_LE(int(got), int(isa));
    }
}

TEST_F(SimdTest, GarbageEnvValueFallsBackAndNeverCrashes)
{
    setenv("WINOMC_ISA", "definitely-not-an-isa", 1);
    mk::setIsa(mk::Isa::Auto); // drop cache so the env is re-read
    const mk::MicroKernels &K = mk::kernels();
    EXPECT_EQ(K.isa, mk::highestSupported());
    EXPECT_EQ(mk::activeIsa(), mk::highestSupported());
    // And the kernels actually run.
    float y[3] = {1.0f, -2.0f, 3.0f};
    K.reluForward(y, nullptr, y, 3);
    EXPECT_EQ(y[1], 0.0f);
}

TEST_F(SimdTest, EnvScalarPinsScalarTable)
{
    setenv("WINOMC_ISA", "scalar", 1);
    mk::setIsa(mk::Isa::Auto);
    EXPECT_EQ(mk::activeIsa(), mk::Isa::Scalar);
    EXPECT_STREQ(mk::kernels().name, "scalar");
}

TEST_F(SimdTest, EveryUsableTableIsFullyPopulated)
{
    for (mk::Isa isa : usableIsas()) {
        mk::setIsa(isa);
        const mk::MicroKernels &K = mk::kernels();
        EXPECT_EQ(K.isa, isa);
        EXPECT_NE(K.name, nullptr);
        EXPECT_GE(K.floatLanes, 1);
        EXPECT_GE(K.doubleLanes, 1);
        EXPECT_NE(K.panelAccum, nullptr);
        EXPECT_NE(K.panelAccumSel, nullptr);
        EXPECT_NE(K.panelAccumGrouped, nullptr);
        EXPECT_NE(K.panelAccumHalf, nullptr);
        EXPECT_NE(K.dotDouble, nullptr);
        EXPECT_NE(K.xformFromTiles, nullptr);
        EXPECT_NE(K.xformToTiles, nullptr);
        EXPECT_NE(K.rowAccumDouble, nullptr);
        EXPECT_NE(K.sumDouble, nullptr);
        EXPECT_NE(K.reluForward, nullptr);
        EXPECT_NE(K.mulPairwise, nullptr);
        EXPECT_NE(K.axpy, nullptr);
        EXPECT_NE(K.addRows, nullptr);
        EXPECT_NE(K.avgPool2Row, nullptr);
    }
}

// ------------------------------------------------------------------
// Primitive-level parity across odd lengths (masked tails)
// ------------------------------------------------------------------

TEST_F(SimdTest, ElementwisePrimitivesBitwiseMatchScalarOnOddLengths)
{
    const mk::MicroKernels *scalar = mk::detail::scalarTable();
    ASSERT_NE(scalar, nullptr);
    for (mk::Isa isa : usableIsas()) {
        mk::setIsa(isa);
        const mk::MicroKernels &K = mk::kernels();
        for (std::int64_t n : {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33}) {
            auto x = randomVec(std::size_t(n), 7u + unsigned(n));
            auto b = randomVec(std::size_t(n), 80u + unsigned(n));
            // ReLU (+ mask) is bitwise across every ISA.
            std::vector<float> yS(std::size_t(n), 0.0f), yV(std::size_t(n), 0.0f);
            std::vector<float> mS(std::size_t(n), 0.0f), mV(std::size_t(n), 0.0f);
            scalar->reluForward(yS.data(), mS.data(), x.data(), n);
            K.reluForward(yV.data(), mV.data(), x.data(), n);
            EXPECT_EQ(0, std::memcmp(yS.data(), yV.data(),
                                     std::size_t(n) * 4))
                << mk::isaName(isa) << " relu n=" << n;
            EXPECT_EQ(0, std::memcmp(mS.data(), mV.data(),
                                     std::size_t(n) * 4))
                << mk::isaName(isa) << " relu mask n=" << n;
            // Pairwise multiply and add are bitwise (no reduction).
            scalar->mulPairwise(yS.data(), x.data(), b.data(), n);
            K.mulPairwise(yV.data(), x.data(), b.data(), n);
            EXPECT_EQ(0, std::memcmp(yS.data(), yV.data(),
                                     std::size_t(n) * 4))
                << mk::isaName(isa) << " mul n=" << n;
            scalar->addRows(yS.data(), x.data(), b.data(), n);
            K.addRows(yV.data(), x.data(), b.data(), n);
            EXPECT_EQ(0, std::memcmp(yS.data(), yV.data(),
                                     std::size_t(n) * 4))
                << mk::isaName(isa) << " add n=" << n;
        }
    }
}

TEST_F(SimdTest, PanelAccumGroupedBitwiseMatchesBlockedSel)
{
    // The sparse elementwise path's contract: one whole-column
    // panelAccumGrouped call over compacted rows must be bitwise
    // identical to the blocked sequence of panelAccumSel calls it
    // replaces (same per-element FMA chains, intermediate y
    // store/loads are exact in fp32 — only the y traffic differs).
    // 19 rows = register blocks of 8, 8, and a 3-row tail; patterns
    // cover scattered drops, a fully dead middle block, and a sparse
    // survivor set.
    const int ni = 19;
    for (mk::Isa isa : usableIsas()) {
        mk::setIsa(isa);
        const mk::MicroKernels &K = mk::kernels();
        for (int len : {1, 7, 16, 33, 64}) {
            std::vector<std::vector<float>> rows;
            std::vector<float> w;
            for (int i = 0; i < ni; ++i) {
                rows.push_back(randomVec(
                    std::size_t(len), 100u + unsigned(i * 7 + len)));
                w.push_back(i % 5 == 0 ? 0.0f
                                       : 0.3f * float(i) - 2.0f);
            }
            for (int pat = 0; pat < 3; ++pat) {
                auto kept = [&](int i) {
                    if (w[std::size_t(i)] == 0.0f)
                        return false;
                    if (pat == 1 && i >= 8 && i < 16)
                        return false; // middle block fully dead
                    if (pat == 2 && i % 2)
                        return false;
                    return true;
                };
                std::vector<float> yRef =
                    randomVec(std::size_t(len), 999u + unsigned(len));
                std::vector<float> yGrp = yRef;
                // Reference: one panelAccumSel per non-empty block.
                std::vector<const float *> xb;
                std::vector<float> wb;
                for (int b0 = 0; b0 < ni; b0 += 8) {
                    const int orig = std::min(8, ni - b0);
                    xb.clear();
                    wb.clear();
                    for (int i = b0; i < b0 + orig; ++i)
                        if (kept(i)) {
                            xb.push_back(rows[std::size_t(i)].data());
                            wb.push_back(w[std::size_t(i)]);
                        }
                    if (!xb.empty())
                        K.panelAccumSel(yRef.data(), xb.data(),
                                        wb.data(), int(xb.size()),
                                        len, orig);
                }
                // Grouped: compact across blocks, one y pass.
                std::vector<const float *> xc;
                std::vector<float> wc;
                std::vector<std::uint8_t> grp;
                int tailOrig = 0;
                for (int b0 = 0; b0 < ni; b0 += 8) {
                    const int orig = std::min(8, ni - b0);
                    const int base = int(xc.size());
                    for (int i = b0; i < b0 + orig; ++i)
                        if (kept(i)) {
                            xc.push_back(rows[std::size_t(i)].data());
                            wc.push_back(w[std::size_t(i)]);
                        }
                    if (int(xc.size()) != base) {
                        grp.push_back(
                            std::uint8_t(int(xc.size()) - base));
                        tailOrig = orig;
                    }
                }
                ASSERT_FALSE(xc.empty());
                K.panelAccumGrouped(yGrp.data(), xc.data(), wc.data(),
                                    int(xc.size()), len, grp.data(),
                                    int(grp.size()), tailOrig);
                EXPECT_EQ(0, std::memcmp(yRef.data(), yGrp.data(),
                                         std::size_t(len) * 4))
                    << mk::isaName(isa) << " len=" << len
                    << " pat=" << pat;
            }
        }
    }
}

TEST_F(SimdTest, ReductionPrimitivesMatchScalarWithinUlp)
{
    const mk::MicroKernels *scalar = mk::detail::scalarTable();
    ASSERT_NE(scalar, nullptr);
    for (mk::Isa isa : usableIsas()) {
        mk::setIsa(isa);
        const mk::MicroKernels &K = mk::kernels();
        for (std::int64_t n : {1, 3, 7, 8, 9, 17, 64, 101, 1000}) {
            auto a = randomVec(std::size_t(n), 11u + unsigned(n));
            auto b = randomVec(std::size_t(n), 12u + unsigned(n));
            // Double-precision reductions: reassociation noise is far
            // below float resolution, just not bitwise.
            const double dS = scalar->dotDouble(a.data(), b.data(),
                                                int(n));
            const double dV = K.dotDouble(a.data(), b.data(), int(n));
            EXPECT_NEAR(dS, dV, 1e-10 * (std::abs(dS) + 1.0))
                << mk::isaName(isa) << " dot n=" << n;
            const double sS = scalar->sumDouble(a.data(), n);
            const double sV = K.sumDouble(a.data(), n);
            EXPECT_NEAR(sS, sV, 1e-10 * (std::abs(sS) + 1.0))
                << mk::isaName(isa) << " sum n=" << n;
            // axpy: the only divergence is one FMA contraction per
            // element, bounded by half an ulp of the product |a*x|
            // (<= 0.37 here). Cancellation makes a relative-ULP bound
            // meaningless, so bound the absolute error instead.
            std::vector<float> yS = b, yV = b;
            scalar->axpy(yS.data(), 0.37f, a.data(), n);
            K.axpy(yV.data(), 0.37f, a.data(), n);
            for (std::int64_t i = 0; i < n; ++i)
                EXPECT_NEAR(yS[std::size_t(i)], yV[std::size_t(i)],
                            2.5e-7)
                    << mk::isaName(isa) << " axpy n=" << n
                    << " i=" << i;
        }
    }
}

TEST_F(SimdTest, AvgPool2RowBitwiseAcrossIsas)
{
    const mk::MicroKernels *scalar = mk::detail::scalarTable();
    ASSERT_NE(scalar, nullptr);
    for (mk::Isa isa : usableIsas()) {
        mk::setIsa(isa);
        const mk::MicroKernels &K = mk::kernels();
        for (int outW : {1, 2, 3, 5, 8, 13, 16, 17}) {
            auto r0 = randomVec(std::size_t(2 * outW), 21u);
            auto r1 = randomVec(std::size_t(2 * outW), 22u);
            std::vector<float> yS(std::size_t(outW), 0.0f);
            std::vector<float> yV(std::size_t(outW), 0.0f);
            scalar->avgPool2Row(yS.data(), r0.data(), r1.data(), outW);
            K.avgPool2Row(yV.data(), r0.data(), r1.data(), outW);
            EXPECT_EQ(0, std::memcmp(yS.data(), yV.data(),
                                     std::size_t(outW) * 4))
                << mk::isaName(isa) << " outW=" << outW;
        }
    }
}

// ------------------------------------------------------------------
// Pipeline-level parity on odd shapes: N=1, C != K, tile counts not a
// multiple of any vector width, all three generated algorithms.
// ------------------------------------------------------------------

struct OddShape
{
    int n, c, k, hw;
};

void
expectTensorNear(const Tensor &a, const Tensor &b, float tol,
                 const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    const float *pa = a.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(pa[i], pb[i],
                    tol * std::max(1.0f, std::abs(pa[i])))
            << what << " flat index " << i;
}

TEST_F(SimdTest, PipelineMatchesScalarWithinTolOnOddShapes)
{
    const OddShape shapes[] = {{1, 3, 5, 9}, {2, 5, 3, 13}};
    const WinogradAlgo f6 = makeWinograd(6, 3);
    const WinogradAlgo *algos[] = {&algoF2x2_3x3(), &algoF4x4_3x3(),
                                   &f6};
    for (const WinogradAlgo *algo : algos) {
        for (const OddShape &s : shapes) {
            Rng rng(5);
            Tensor x(s.n, s.c, s.hw, s.hw);
            Tensor w(s.k, s.c, 3, 3);
            Tensor dy(s.n, s.k, s.hw, s.hw);
            x.fillUniform(rng);
            w.fillUniform(rng);
            dy.fillUniform(rng);

            mk::setIsa(mk::Isa::Scalar);
            WinoWeights Ws = transformWeights(w, *algo);
            Tensor yS = winogradForward(x, Ws, *algo);
            Tensor dxS = winogradBackwardData(dy, Ws, *algo, s.hw,
                                              s.hw);
            WinoWeights gS = winogradGradWeights(x, dy, *algo);

            mk::setIsa(mk::Isa::Auto);
            WinoWeights Wv = transformWeights(w, *algo);
            Tensor yV = winogradForward(x, Wv, *algo);
            Tensor dxV = winogradBackwardData(dy, Wv, *algo, s.hw,
                                              s.hw);
            WinoWeights gV = winogradGradWeights(x, dy, *algo);

            // Larger tiles are worse conditioned: F(6,3)'s transform
            // matrices amplify reassociation + FMA noise by orders of
            // magnitude over F(2,3) (the classic large-tile Winograd
            // accuracy cliff), so the bound scales with m.
            const float tol = algo->m >= 6 ? 1e-2f : 1e-3f;
            expectTensorNear(yS, yV, tol, "forward");
            expectTensorNear(dxS, dxV, tol, "backward-data");
            ASSERT_EQ(gS.size(), gV.size());
            for (std::size_t i = 0; i < gS.size(); ++i)
                ASSERT_NEAR(gS.raw()[i], gV.raw()[i],
                            tol * std::max(1.0f,
                                           std::abs(gS.raw()[i])))
                    << "gradW flat index " << i << " m=" << algo->m;
        }
    }
}

TEST_F(SimdTest, DirectConvMatchesScalarWithinTol)
{
    Rng rng(9);
    Tensor x(1, 3, 11, 11);
    Tensor w(5, 3, 3, 3);
    Tensor dy(1, 5, 11, 11);
    x.fillUniform(rng);
    w.fillUniform(rng);
    dy.fillUniform(rng);

    mk::setIsa(mk::Isa::Scalar);
    Tensor yS = directConvForward(x, w);
    Tensor dxS = directConvBackwardData(dy, w);
    Tensor gS = directConvGradWeights(x, dy, 3);
    mk::setIsa(mk::Isa::Auto);
    Tensor yV = directConvForward(x, w);
    Tensor dxV = directConvBackwardData(dy, w);
    Tensor gV = directConvGradWeights(x, dy, 3);

    expectTensorNear(yS, yV, 1e-5f, "direct forward");
    expectTensorNear(dxS, dxV, 1e-5f, "direct backward-data");
    // GradWeights stays on the one scalar kernel by contract: its
    // serial (b, oy, ox) reduction order is part of the bitwise spec.
    EXPECT_EQ(0, std::memcmp(gS.data(), gV.data(), gS.size() * 4));
}

// ------------------------------------------------------------------
// Bitwise reproducibility across thread counts, per ISA
// ------------------------------------------------------------------

TEST_F(SimdTest, PipelineBitwiseInvariantAcrossThreadCountsPerIsa)
{
    Rng rng(3);
    Tensor x(2, 5, 13, 13);
    Tensor w(3, 5, 3, 3);
    Tensor dy(2, 3, 13, 13);
    x.fillUniform(rng);
    w.fillUniform(rng);
    dy.fillUniform(rng);
    const auto &algo = algoF4x4_3x3();

    for (mk::Isa isa : usableIsas()) {
        mk::setIsa(isa);
        WinoWeights W = transformWeights(w, algo);

        ThreadPool::global().setThreadCount(1);
        Tensor y1 = winogradForward(x, W, algo);
        Tensor dx1 = winogradBackwardData(dy, W, algo, 13, 13);
        WinoWeights g1 = winogradGradWeights(x, dy, algo);

        ThreadPool::global().setThreadCount(8);
        Tensor y8 = winogradForward(x, W, algo);
        Tensor dx8 = winogradBackwardData(dy, W, algo, 13, 13);
        WinoWeights g8 = winogradGradWeights(x, dy, algo);

        EXPECT_EQ(0, std::memcmp(y1.data(), y8.data(), y1.size() * 4))
            << mk::isaName(isa);
        EXPECT_EQ(0,
                  std::memcmp(dx1.data(), dx8.data(), dx1.size() * 4))
            << mk::isaName(isa);
        EXPECT_EQ(0, std::memcmp(g1.raw(), g8.raw(), g1.size() * 4))
            << mk::isaName(isa);
    }
}

} // namespace
