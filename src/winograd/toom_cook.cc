#include "winograd/toom_cook.hh"

#include "common/logging.hh"

namespace winomc {

namespace {

using Poly = std::vector<Rational>; // coefficient i multiplies t^i

Poly
polyMul(const Poly &a, const Poly &b)
{
    Poly out(a.size() + b.size() - 1, Rational(0));
    for (size_t i = 0; i < a.size(); ++i)
        for (size_t j = 0; j < b.size(); ++j)
            out[i + j] += a[i] * b[j];
    return out;
}

Poly
polyScale(const Poly &a, const Rational &s)
{
    Poly out = a;
    for (auto &c : out)
        c *= s;
    return out;
}

} // namespace

std::vector<Rational>
defaultPoints(int count)
{
    std::vector<Rational> pts;
    pts.reserve(size_t(count));
    if (count >= 1)
        pts.emplace_back(0);
    for (int k = 1; int(pts.size()) < count; ++k) {
        pts.emplace_back(k);
        if (int(pts.size()) < count)
            pts.emplace_back(-k);
    }
    return pts;
}

ToomCookMatrices
generateToomCook(int m, int r, std::vector<Rational> points)
{
    winomc_assert(m >= 1 && r >= 1, "F(m,r) needs m,r >= 1");
    const int alpha = m + r - 1;
    const int nfinite = alpha - 1;

    if (points.empty())
        points = defaultPoints(nfinite);
    winomc_assert(int(points.size()) == nfinite,
                  "F(", m, ",", r, ") needs ", nfinite,
                  " finite points, got ", points.size());
    for (int i = 0; i < nfinite; ++i)
        for (int j = i + 1; j < nfinite; ++j)
            winomc_assert(points[i] != points[j],
                          "interpolation points must be distinct");

    ToomCookMatrices tc;
    tc.m = m;
    tc.r = r;
    tc.alpha = alpha;

    // Evaluation matrices. Row i < alpha-1 evaluates at a_i: [1, a, a^2,
    // ...]; the last row is the point at infinity (leading coefficient).
    auto eval_matrix = [&](int cols) {
        std::vector<std::vector<Rational>> e(
            size_t(alpha), std::vector<Rational>(size_t(cols),
                                                 Rational(0)));
        for (int i = 0; i < nfinite; ++i) {
            Rational p(1);
            for (int j = 0; j < cols; ++j) {
                e[size_t(i)][size_t(j)] = p;
                p *= points[size_t(i)];
            }
        }
        e[size_t(alpha - 1)][size_t(cols - 1)] = Rational(1);
        return e;
    };

    tc.G = eval_matrix(r);

    // A^T = E^T where E = eval_matrix(m): A^T[j][i] = a_i^j, last column
    // is e_{m-1}.
    auto em = eval_matrix(m);
    tc.AT.assign(size_t(m), std::vector<Rational>(size_t(alpha),
                                                  Rational(0)));
    for (int i = 0; i < alpha; ++i)
        for (int j = 0; j < m; ++j)
            tc.AT[size_t(j)][size_t(i)] = em[size_t(i)][size_t(j)];

    // B^T row i < alpha-1: coefficients of the Lagrange basis polynomial
    // L_i(t) = prod_{j != i} (t - a_j) / (a_i - a_j), padded to degree
    // alpha-1. Row alpha-1: coefficients of M(t) = prod (t - a_i).
    tc.BT.assign(size_t(alpha), std::vector<Rational>(size_t(alpha),
                                                      Rational(0)));
    for (int i = 0; i < nfinite; ++i) {
        Poly num{Rational(1)};
        Rational den(1);
        for (int j = 0; j < nfinite; ++j) {
            if (j == i)
                continue;
            num = polyMul(num, Poly{-points[size_t(j)], Rational(1)});
            den *= points[size_t(i)] - points[size_t(j)];
        }
        Poly li = polyScale(num, Rational(1) / den);
        for (size_t k = 0; k < li.size(); ++k)
            tc.BT[size_t(i)][k] = li[k];
    }
    Poly master{Rational(1)};
    for (int j = 0; j < nfinite; ++j)
        master = polyMul(master, Poly{-points[size_t(j)], Rational(1)});
    for (size_t k = 0; k < master.size(); ++k)
        tc.BT[size_t(alpha - 1)][k] = master[k];

    return tc;
}

Matrix
toMatrix(const std::vector<std::vector<Rational>> &rm)
{
    winomc_assert(!rm.empty(), "empty rational matrix");
    Matrix out(int(rm.size()), int(rm.front().size()));
    for (size_t r = 0; r < rm.size(); ++r) {
        winomc_assert(rm[r].size() == rm.front().size(),
                      "ragged rational matrix");
        for (size_t c = 0; c < rm[r].size(); ++c)
            out.at(int(r), int(c)) = rm[r][c].toDouble();
    }
    return out;
}

} // namespace winomc
