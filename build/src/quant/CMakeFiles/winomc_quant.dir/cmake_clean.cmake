file(REMOVE_RECURSE
  "CMakeFiles/winomc_quant.dir/activation_map.cc.o"
  "CMakeFiles/winomc_quant.dir/activation_map.cc.o.d"
  "CMakeFiles/winomc_quant.dir/predict.cc.o"
  "CMakeFiles/winomc_quant.dir/predict.cc.o.d"
  "CMakeFiles/winomc_quant.dir/quantizer.cc.o"
  "CMakeFiles/winomc_quant.dir/quantizer.cc.o.d"
  "CMakeFiles/winomc_quant.dir/zero_skip.cc.o"
  "CMakeFiles/winomc_quant.dir/zero_skip.cc.o.d"
  "libwinomc_quant.a"
  "libwinomc_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
