/**
 * @file
 * Cross-module integration tests.
 *
 * The central one: the functional MPT emulation (batch over clusters,
 * tile elements over groups, explicit scatter/gather and group
 * reductions) computes *exactly* the same forward output, input
 * gradient and weight gradient as the single-worker reference, for
 * every (ng, nc) organization - the parallelization changes the
 * schedule, never the math. Plus end-to-end flows that tie the
 * simulators and the numerics together.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "memnet/link_model.hh"
#include "memnet/message_sim.hh"
#include "mpt/comm_volume.hh"
#include "mpt/functional.hh"
#include "mpt/layer_sim.hh"
#include "mpt/mpt_conv_layer.hh"
#include "nn/basic_layers.hh"
#include "nn/conv_layer.hh"
#include "nn/dataset.hh"
#include "nn/trainer.hh"
#include "noc/network.hh"
#include "noc/topology.hh"
#include "quant/predict.hh"
#include "workloads/layers.hh"

namespace winomc {

// This suite validates the fp32 pipeline against fp32 oracles (direct
// convolution, numeric gradients, bitwise stage parity), so the
// activation storage precision is pinned to fp32 regardless of
// WINOMC_PREC. WINOMC_SPARSE stays env-driven on purpose: sparse
// execution is bitwise identical and must keep passing here.
[[maybe_unused]] const bool kPinFp32 = [] {
    setPrec(Prec::F32);
    return true;
}();

namespace {

using mpt::runFunctionalMpt;
using mpt::runReference;

struct Org
{
    int ng, nc;
};

class FunctionalMptP : public ::testing::TestWithParam<Org> {};

TEST_P(FunctionalMptP, MatchesSingleWorkerReference)
{
    const auto org = GetParam();
    const WinogradAlgo &algo = algoF2x2_3x3();
    Rng rng(404);
    const int B = 8, I = 3, J = 5, H = 10, Wd = 10;
    Tensor x(B, I, H, Wd), dy(B, J, H, Wd);
    x.fillUniform(rng);
    dy.fillUniform(rng);
    Tensor w(J, I, 3, 3);
    w.fillKaiming(rng);
    WinoWeights W = transformWeights(w, algo);

    auto ref = runReference(x, dy, W, algo);
    auto par = runFunctionalMpt(x, dy, W, algo, org.ng, org.nc);

    float scale = std::max({1.0f, ref.y.absMax(), ref.dx.absMax()});
    EXPECT_LT(par.y.maxAbsDiff(ref.y), 1e-4f * scale);
    EXPECT_LT(par.dx.maxAbsDiff(ref.dx), 1e-4f * scale);
    EXPECT_LT(par.dW.maxAbsDiff(ref.dW), 2e-3f);

    // Data-parallel organization moves no tiles.
    if (org.ng == 1)
        EXPECT_EQ(par.tileElemsTransferred, 0u);
    else
        EXPECT_GT(par.tileElemsTransferred, 0u);
    EXPECT_GT(par.weightElemsReduced, 0u);
}

INSTANTIATE_TEST_SUITE_P(Organizations, FunctionalMptP,
    ::testing::Values(Org{1, 1}, Org{1, 8}, Org{16, 1}, Org{4, 2},
                      Org{4, 8}, Org{16, 4}, Org{2, 4}, Org{8, 8}),
    [](const ::testing::TestParamInfo<Org> &info) {
        return "ng" + std::to_string(info.param.ng) + "nc" +
               std::to_string(info.param.nc);
    });

TEST(FunctionalMpt, TileTrafficMatchesSectionIIICFormula)
{
    // The emulation's counted traffic must agree with the analytic
    // volume formula used by the communication model.
    const WinogradAlgo &algo = algoF2x2_3x3();
    Rng rng(7);
    const int B = 8, C = 4, H = 8;
    Tensor x(B, C, H, H), dy(B, C, H, H);
    x.fillUniform(rng);
    dy.fillUniform(rng);
    Tensor w(C, C, 3, 3);
    w.fillUniform(rng);
    WinoWeights W = transformWeights(w, algo);

    const int ng = 4, nc = 2;
    auto par = runFunctionalMpt(x, dy, W, algo, ng, nc);

    // Per-worker analytic volume (elements, no prediction, both
    // directions and phases) times the worker count.
    ConvSpec spec{"t", B, C, C, H, H, 3};
    auto vol = mpt::mptCommVolume(spec, algo,
                                  memnet::ClusterShape{ng, nc}, nullptr);
    double analytic_elems = vol.tileBytes / 4.0 * ng * nc;
    // The 1D-predict line shrink (m/alpha on gathers) is a transfer
    // representation detail the functional emulation doesn't model, so
    // compare against the un-shrunk expectation.
    double gather_rep = double(algo.m) / algo.alpha;
    double unshrunk =
        analytic_elems * 2.0 / (1.0 + gather_rep);
    EXPECT_NEAR(double(par.tileElemsTransferred), unshrunk,
                0.02 * unshrunk);
}

TEST(Integration, WinogradLayerTrainingTrajectoryMatchesDirectClosely)
{
    // WinogradSpatial mode is the *same function and same parameters*
    // as Direct mode; their training trajectories must track each
    // other step for step (FP noise aside).
    Rng rng_a(55), rng_b(55), data_rng(66);
    const auto &algo = algoF2x2_3x3();
    nn::ConvLayer direct(2, 3, 3, nn::ConvMode::Direct, algo, rng_a);
    nn::ConvLayer wino(2, 3, 3, nn::ConvMode::WinogradSpatial, algo,
                       rng_b);

    Tensor x(4, 2, 8, 8);
    x.fillUniform(data_rng);
    for (int step = 0; step < 5; ++step) {
        Tensor yd = direct.forward(x, true);
        Tensor yw = wino.forward(x, true);
        ASSERT_LT(yd.maxAbsDiff(yw), 5e-3f) << "step " << step;
        direct.backward(yd);
        wino.backward(yw);
        direct.step(0.05f);
        wino.step(0.05f);
    }
    EXPECT_LT(direct.spatialWeights().maxAbsDiff(wino.spatialWeights()),
              5e-3f);
}

TEST(Integration, MptConvLayerTrainsIdenticallyToSoloLayer)
{
    // A network of MPT-partitioned conv layers and the single-worker
    // Winograd-layer network, trained on the same data with the same
    // seeds, must follow the same trajectory.
    const auto &algo = algoF2x2_3x3();
    Rng data_rng(31);
    nn::Dataset train_set = nn::makeShapeDataset(96, 12, 3, data_rng);
    nn::Dataset val_set = nn::makeShapeDataset(32, 12, 3, data_rng);

    auto build = [&](bool distributed, Rng &rng) {
        auto net = std::make_unique<nn::Sequential>();
        if (distributed)
            net->add(std::make_unique<mpt::MptConvLayer>(1, 6, 3, 4, 4,
                                                         algo, rng));
        else
            net->add(std::make_unique<nn::ConvLayer>(
                1, 6, 3, nn::ConvMode::WinogradLayer, algo, rng));
        net->add(std::make_unique<nn::ReLU>());
        net->add(std::make_unique<nn::GlobalAvgPool>());
        net->add(std::make_unique<nn::Dense>(6, 3, rng));
        return net;
    };

    Rng sa(9), sb(9), oa(4), ob(4);
    auto solo = build(false, sa);
    auto dist = build(true, sb);

    nn::TrainConfig cfg;
    cfg.epochs = 3;
    cfg.batchSize = 16;
    auto ha = nn::train(*solo, train_set, val_set, cfg, oa);
    auto hb = nn::train(*dist, train_set, val_set, cfg, ob);

    for (size_t e = 0; e < ha.size(); ++e) {
        EXPECT_NEAR(ha[e].trainLoss, hb[e].trainLoss,
                    1e-3 * std::max(1.0, ha[e].trainLoss)) << e;
        EXPECT_NEAR(ha[e].valAcc, hb[e].valAcc, 0.05) << e;
    }
    auto &conv = dynamic_cast<mpt::MptConvLayer &>(dist->child(0));
    EXPECT_GT(conv.tileElemsTransferred(), 0u);
    EXPECT_GT(conv.weightElemsReduced(), 0u);
}

TEST(Integration, PredictionSkipsAreSoundOnTrainedNetwork)
{
    // End to end: train, harvest real tiles, predict, and verify the
    // no-false-negative guarantee on live data (not just random tiles).
    // Harvesting reads lastOutputTiles(), which only the staged path
    // populates — pin fused mode to Auto for this test (WINOMC_FUSED=on
    // would bypass the tile slabs by documented contract).
    const FusedMode savedFused = requestedFusedMode();
    setFusedMode(FusedMode::Auto);
    Rng rng(77);
    const auto &algo = algoF2x2_3x3();
    nn::Dataset train_set = nn::makeShapeDataset(128, 12, 3, rng);
    nn::Dataset val_set = nn::makeShapeDataset(32, 12, 3, rng);

    nn::Sequential net;
    net.add(std::make_unique<nn::ConvLayer>(
        1, 6, 3, nn::ConvMode::WinogradLayer, algo, rng));
    net.add(std::make_unique<nn::ReLU>());
    auto conv = std::make_unique<nn::ConvLayer>(
        6, 6, 3, nn::ConvMode::WinogradLayer, algo, rng);
    nn::ConvLayer *probe = conv.get();
    net.add(std::move(conv));
    net.add(std::make_unique<nn::ReLU>());
    net.add(std::make_unique<nn::GlobalAvgPool>());
    net.add(std::make_unique<nn::Dense>(6, 3, rng));

    nn::TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batchSize = 16;
    nn::train(net, train_set, val_set, cfg, rng);

    std::vector<int> labels;
    Tensor xb = val_set.batch(0, 16, labels);
    net.forward(xb, true);

    for (auto mode : {quant::PredictMode::TwoD,
                      quant::PredictMode::OneD}) {
        double sigma = quant::ActivationPredictor::wireSigma(
            probe->lastOutputTiles(), algo, mode);
        quant::NonUniformQuantizer qz(mode == quant::PredictMode::TwoD
                                          ? 64 : 32, 4, sigma);
        quant::ActivationPredictor pred(algo, qz, mode);
        quant::PredictStats st = pred.run(probe->lastOutputTiles());
        EXPECT_EQ(st.falseNegatives, 0u);
        EXPECT_GT(st.tiles, 0u);
    }
    setFusedMode(savedFused);
}

TEST(Integration, FlitSimValidatesAnalyticClusterBandwidth)
{
    // The narrow-link FBFLY all-to-all time assumed by the layer model
    // must be reachable in the flit-level simulator: offered neighbor+
    // transpose-ish traffic at 80% of the analytic link rate drains.
    noc::NocConfig cfg;
    cfg.flitBytes = 10;
    noc::Network net(std::make_unique<noc::FlatButterfly2D>(4), cfg);
    Rng rng(31);
    int sent = 0;
    for (int round = 0; round < 200; ++round) {
        for (int s = 0; s < 16; ++s) {
            int d = int(rng.uniformInt(0, 14));
            if (d >= s)
                ++d;
            net.offerPacket(s, d, 64);
            ++sent;
        }
    }
    ASSERT_TRUE(net.drain(2000000));
    EXPECT_EQ(net.ejectedCount(), uint64_t(sent));
}

TEST(Integration, LayerSimConsistentWithMessageSim)
{
    // The all-to-all time inside the layer model (analytic bottleneck)
    // agrees with the event-driven message simulator within the
    // pipelining slack.
    memnet::ClusterShape shape{16, 16};
    auto topo_a = memnet::clusterTopology(shape);
    double per_pair = 100e3;
    double analytic = memnet::allToAllTime(*topo_a, per_pair,
                                           memnet::clusterLink(shape));
    auto topo_b = memnet::clusterTopology(shape);
    double simulated = memnet::simulateAllToAll(
        *topo_b, memnet::clusterLink(shape), per_pair);
    EXPECT_GT(simulated, 0.9 * analytic);
    EXPECT_LT(simulated, 1.4 * analytic);
}

} // namespace
} // namespace winomc
