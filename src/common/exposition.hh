/**
 * @file
 * Runtime metrics exposition: a minimal built-in HTTP listener serving
 * the live metrics registry in Prometheus text format.
 *
 * Knob: WINOMC_STATS_PORT=<port> (env.hh parse discipline; unset or
 * rejected means no listener). startFromEnv() is called by long-lived
 * services (serve::Engine) and the serving bench, so setting the knob
 * is all a deployment needs; tests call start(0) for an ephemeral
 * port. A bind failure (port taken, no loopback) warns and degrades
 * to "no exposition" — it never kills the process.
 *
 * One background publisher thread owns both duties:
 *  - answering HTTP GETs with a fresh renderText(metrics::snapshot())
 *    (scrapes are reads — they never reset counters; Prometheus wants
 *    cumulative series and computes rates server-side);
 *  - a ~1 s tick taking metrics::snapshotDelta() against its private
 *    baseline to publish derived gauges (serve.qps from the
 *    serve.requests delta, process.uptime_sec), so rate-style numbers
 *    exist even for consumers that only ever look at one scrape.
 *
 * Exposition format notes (renderText, exercised round-trip by
 * tests/observability_test.cpp):
 *  - metric names are escaped to [a-zA-Z0-9_:] ('.', '/' and anything
 *    else become '_'; a leading digit gains a '_' prefix);
 *  - counters/gauges emit one sample; timers emit a summary
 *    (_count/_sum of seconds); histograms emit cumulative _bucket
 *    series with le edges, _sum, _count, plus _p50/_p90/_p99 gauges;
 *  - empty-histogram percentiles render as "NaN" (a valid Prometheus
 *    float), never "-";
 *  - a histogram carrying an exemplar renders it OpenMetrics-style on
 *    the bucket containing the exemplar value:
 *        serve_latency_us_bucket{le="+Inf"} 42 # {trace_id="17"} 93211
 *    so a p99 outlier is one id-lookup away from its span in the
 *    WINOMC_TRACE file.
 */

#ifndef WINOMC_COMMON_EXPOSITION_HH
#define WINOMC_COMMON_EXPOSITION_HH

#include <string>
#include <vector>

#include "common/metrics.hh"

namespace winomc::exposition {

/**
 * Start the listener on 127.0.0.1:`port` (0 = kernel-assigned
 * ephemeral port). Returns the bound port, or -1 when binding failed
 * (warned) or a listener is already running (its port is returned by
 * port()). Enables metrics recording — a scrape endpoint with nothing
 * to scrape is useless.
 */
int start(int port);

/** start(WINOMC_STATS_PORT); silently returns -1 when the knob is
 *  unset. Idempotent — every Engine construction calls this. */
int startFromEnv();

/** Stop the listener and join the publisher thread. Idempotent; also
 *  runs at process exit. */
void stop();

bool running();

/** Bound port of the running listener, or -1. */
int port();

/** Escape a metric name per the exposition rules above. */
std::string promName(const std::string &name);

/** Render samples as Prometheus text format (one scrape body). */
std::string renderText(const std::vector<metrics::Sample> &samples);

} // namespace winomc::exposition

#endif // WINOMC_COMMON_EXPOSITION_HH
