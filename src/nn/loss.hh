/**
 * @file
 * Softmax cross-entropy loss for classification training.
 */

#ifndef WINOMC_NN_LOSS_HH
#define WINOMC_NN_LOSS_HH

#include <vector>

#include "tensor/tensor.hh"

namespace winomc::nn {

/** Loss value plus gradient w.r.t. the logits. */
struct LossResult
{
    double loss;     ///< mean cross-entropy over the batch
    Tensor dlogits;  ///< (B, 1, 1, classes)
    int correct;     ///< top-1 hits in the batch
};

/**
 * Softmax + cross-entropy on logits (B, 1, 1, classes) against integer
 * labels. The returned gradient is already divided by the batch size.
 */
LossResult softmaxCrossEntropy(const Tensor &logits,
                               const std::vector<int> &labels);

} // namespace winomc::nn

#endif // WINOMC_NN_LOSS_HH
