
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/noc_micro.cpp" "bench/CMakeFiles/noc_micro.dir/noc_micro.cpp.o" "gcc" "bench/CMakeFiles/noc_micro.dir/noc_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/winomc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/memnet/CMakeFiles/winomc_memnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/winomc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/winomc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
