#include "winograd/plan.hh"

#include "common/trace.hh"
#include "winograd/conv.hh"

namespace winomc {

WinoPlan::WinoPlan(const WinogradAlgo &algo, int batch, int inCh,
                   int outCh, int h, int w)
    : alg(algo), nb(batch), ni(inCh), nj(outCh), fh(h), fw(w),
      grid(h, w, algo)
{
    winomc_assert(batch > 0 && inCh > 0 && outCh > 0,
                  "degenerate WinoPlan configuration");
    // Validate the planned working set against the workspace budget
    // before touching the pool, so an oversized shape dies with a clear
    // message instead of an OOM mid-pipeline.
    const std::size_t perUv =
        std::size_t(algo.alpha) * algo.alpha * batch * grid.tiles();
    ws::checkBudget(perUv * (2 * std::size_t(inCh + outCh)) *
                        sizeof(float),
                    "WinoPlan(" + std::to_string(batch) + "x" +
                        std::to_string(inCh) + "->" +
                        std::to_string(outCh) + "@" + std::to_string(h) +
                        "x" + std::to_string(w) + ")");
    Xt.reshape(algo.alpha, inCh, batch, grid.tiles());
    Yt.reshape(algo.alpha, outCh, batch, grid.tiles());
    dYt.reshape(algo.alpha, outCh, batch, grid.tiles());
    dXt.reshape(algo.alpha, inCh, batch, grid.tiles());
}

bool
WinoPlan::matches(const WinogradAlgo &algo, int batch, int inCh,
                  int outCh, int h, int w) const
{
    return &algo == &alg && batch == nb && inCh == ni && outCh == nj &&
           h == fh && w == fw;
}

std::size_t
WinoPlan::workspaceBytes() const
{
    return (Xt.size() + Yt.size() + dYt.size() + dXt.size()) *
           sizeof(float);
}

void
WinoPlan::forwardInto(const Tensor &x, const WinoWeights &W, Tensor &y)
{
    WINOMC_SPAN("wino.phase.fwd", "wino");
    transformInputInto(x, alg, Xt);
    elementwiseForwardInto(Xt, W, Yt);
    inverseTransformInto(Yt, alg, y);
    haveInput = haveOutput = true;
}

void
WinoPlan::backwardDataInto(const Tensor &dy, const WinoWeights &W,
                           Tensor &dx)
{
    WINOMC_SPAN("wino.phase.bwd_data", "wino");
    inverseTransformAdjointInto(dy, alg, dYt);
    haveGrad = true;
    elementwiseBackwardDataInto(dYt, W, dXt);
    transformInputAdjointInto(dXt, alg, dx);
}

void
WinoPlan::gradWeightsInto(const Tensor &x, const Tensor &dy,
                          WinoWeights &dW)
{
    WINOMC_SPAN("wino.phase.grad_weights", "wino");
    transformInputInto(x, alg, Xt);
    haveInput = true;
    inverseTransformAdjointInto(dy, alg, dYt);
    haveGrad = true;
    elementwiseGradWeightsInto(dYt, Xt, dW);
}

void
WinoPlan::transformGradOutput(const Tensor &dy)
{
    inverseTransformAdjointInto(dy, alg, dYt);
    haveGrad = true;
}

void
WinoPlan::gradWeightsFromCachedInto(WinoWeights &dW)
{
    winomc_assert(haveInput && haveGrad,
                  "gradWeightsFromCachedInto without cached forward "
                  "tiles and transformed grad-output");
    elementwiseGradWeightsInto(dYt, Xt, dW);
}

void
WinoPlan::backwardDataFromCachedInto(const WinoWeights &W, Tensor &dx)
{
    winomc_assert(haveGrad, "backwardDataFromCachedInto before "
                            "transformGradOutput");
    elementwiseBackwardDataInto(dYt, W, dXt);
    transformInputAdjointInto(dXt, alg, dx);
}

void
WinoPlan::scatterInput(const Tensor &x)
{
    transformInputInto(x, alg, Xt);
    haveInput = true;
}

void
WinoPlan::gatherOutputInto(Tensor &y)
{
    inverseTransformInto(Yt, alg, y);
    haveOutput = true;
}

void
WinoPlan::gatherGradInputInto(Tensor &dx)
{
    transformInputAdjointInto(dXt, alg, dx);
}

const WinoTiles &
WinoPlan::inputTiles() const
{
    winomc_assert(haveInput, "input tiles not populated");
    return Xt;
}

const WinoTiles &
WinoPlan::outputTiles() const
{
    winomc_assert(haveOutput, "output tiles not populated");
    return Yt;
}

const WinoTiles &
WinoPlan::gradOutputTiles() const
{
    winomc_assert(haveGrad, "grad-output tiles not populated");
    return dYt;
}

} // namespace winomc
