# Empty compiler generated dependencies file for mpt_layer_explorer.
# This may be replaced when dependencies are built.
