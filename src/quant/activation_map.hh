/**
 * @file
 * Activation map and packing engine of the P2P communication unit
 * (Section VI-C, Fig 13(b)).
 *
 * The source worker packs (compresses) tile data before sending: units
 * predicted non-activated (gathering) or exactly zero (scattering) are
 * dropped, and a bit-per-unit activation map - shared between source
 * and destination - tells the receiver where to re-insert zeros. The
 * hardware uses pointer-shift registers so the data itself never moves
 * inside the buffers; this model is the behavioural equivalent and
 * accounts for the exact wire bytes (packed payload + map).
 */

#ifndef WINOMC_QUANT_ACTIVATION_MAP_HH
#define WINOMC_QUANT_ACTIVATION_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace winomc::quant {

/** One bit per transfer unit (tile, line, or element). */
class ActivationMap
{
  public:
    explicit ActivationMap(size_t units);

    void set(size_t unit, bool live);
    bool live(size_t unit) const;

    size_t units() const { return nUnits; }
    size_t liveCount() const;
    /** Wire overhead of shipping the map itself. */
    size_t mapBytes() const { return bits.size(); }

  private:
    size_t nUnits;
    std::vector<uint8_t> bits;
};

/**
 * Pack: emit only the live units (unit_floats consecutive values per
 * unit) in order. The payload the wire carries.
 */
std::vector<float> packUnits(const float *data, size_t unit_floats,
                             const ActivationMap &map);

/**
 * Unpack at the receiver: live units from the payload, zeros elsewhere.
 * `out` must hold units() * unit_floats values.
 */
void unpackUnits(const std::vector<float> &packed, size_t unit_floats,
                 const ActivationMap &map, float *out);

/** Build a map marking all-zero units dead (scatter zero-skipping). */
ActivationMap mapFromZeroUnits(const float *data, size_t units,
                               size_t unit_floats);

/** Wire bytes of a packed transfer: payload + activation map. */
size_t packedWireBytes(const ActivationMap &map, size_t unit_floats);

} // namespace winomc::quant

#endif // WINOMC_QUANT_ACTIVATION_MAP_HH
