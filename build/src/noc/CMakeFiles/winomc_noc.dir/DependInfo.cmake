
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/memcentric.cc" "src/noc/CMakeFiles/winomc_noc.dir/memcentric.cc.o" "gcc" "src/noc/CMakeFiles/winomc_noc.dir/memcentric.cc.o.d"
  "/root/repo/src/noc/network.cc" "src/noc/CMakeFiles/winomc_noc.dir/network.cc.o" "gcc" "src/noc/CMakeFiles/winomc_noc.dir/network.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/noc/CMakeFiles/winomc_noc.dir/router.cc.o" "gcc" "src/noc/CMakeFiles/winomc_noc.dir/router.cc.o.d"
  "/root/repo/src/noc/topology.cc" "src/noc/CMakeFiles/winomc_noc.dir/topology.cc.o" "gcc" "src/noc/CMakeFiles/winomc_noc.dir/topology.cc.o.d"
  "/root/repo/src/noc/traffic.cc" "src/noc/CMakeFiles/winomc_noc.dir/traffic.cc.o" "gcc" "src/noc/CMakeFiles/winomc_noc.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/winomc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
