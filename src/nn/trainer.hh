/**
 * @file
 * Mini-batch SGD training loop with per-epoch validation.
 */

#ifndef WINOMC_NN_TRAINER_HH
#define WINOMC_NN_TRAINER_HH

#include <vector>

#include "nn/dataset.hh"
#include "nn/module.hh"

namespace winomc::nn {

struct TrainConfig
{
    int epochs = 10;
    int batchSize = 16;
    float lr = 0.05f;
    float lrDecay = 1.0f;  ///< multiplicative per-epoch decay
    bool verbose = false;
};

struct EpochStats
{
    double trainLoss;
    double trainAcc;
    double valAcc;
};

/**
 * Train `model` (which must end in logits of `train.classes` width) and
 * return per-epoch statistics. Data order is shuffled with `rng`.
 */
std::vector<EpochStats> train(Module &model, const Dataset &train_set,
                              const Dataset &val_set,
                              const TrainConfig &cfg, Rng &rng);

/** Top-1 accuracy of the model on a dataset. */
double evaluate(Module &model, const Dataset &ds, int batch_size = 32);

} // namespace winomc::nn

#endif // WINOMC_NN_TRAINER_HH
