/**
 * @file
 * Non-uniform quantizer of Winograd-domain values (Section V, Fig 10).
 *
 * The value range is symmetric around zero and split per side into R
 * regions; every region holds the same number of steps and the step size
 * doubles from one region to the next (delta, 2 delta, 4 delta, ...).
 * The base step delta is derived from the standard deviation of the real
 * values so the fine region covers the bulk of the (approximately
 * normal) distribution. R = 1 degenerates to a uniform quantizer.
 *
 * Quantization is *floor* (toward -infinity): the real value always lies
 * in [q, q + resolution). This one-sided bracket is what makes the
 * conservative activation prediction of predict.hh possible: an upper
 * bound of any +/- weighted sum of real values can be built from q and
 * the per-value resolution alone.
 *
 * Values beyond the representable range are flagged as overflow; the
 * predictor then refuses to skip anything depending on them.
 */

#ifndef WINOMC_QUANT_QUANTIZER_HH
#define WINOMC_QUANT_QUANTIZER_HH

#include <cstdint>

namespace winomc::quant {

/** One quantized sample: reconstruction value, bracket width, overflow. */
struct Quantized
{
    float q;        ///< reconstruction (lower bracket edge)
    float res;      ///< resolution: real in [q, q + res)
    bool overflow;  ///< real value outside the representable range
};

class NonUniformQuantizer
{
  public:
    /**
     * @param levels       total quantization levels (both signs),
     *                     e.g. 64 for the paper's 6-bit 2D predict,
     *                     32 for the 5-bit 1D predict
     * @param regions      regions per side (1 = uniform, paper sweeps
     *                     2 / 4 / 8; 4 matched the distribution best)
     * @param sigma        standard deviation of the real values
     * @param range_sigmas full-scale range per side, in sigmas
     */
    NonUniformQuantizer(int levels, int regions, double sigma,
                        double range_sigmas = 4.0);

    Quantized quantize(float v) const;

    /** Encode to the integer level index a real link would carry. */
    int encode(float v) const;
    /** Decode a level index back to (q, res). */
    Quantized decode(int code) const;

    int levels() const { return nLevels; }
    int regions() const { return nRegions; }
    /** Bits per transmitted value. */
    int bits() const;
    /** Base (finest) step size. */
    double baseStep() const { return delta; }
    /** Representable magnitude limit. */
    double fullScale() const { return range; }

  private:
    int nLevels;
    int nRegions;
    int stepsPerRegion; ///< per side
    double delta;
    double range;
};

} // namespace winomc::quant

#endif // WINOMC_QUANT_QUANTIZER_HH
