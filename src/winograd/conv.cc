#include "winograd/conv.hh"

#include <array>

namespace winomc {

namespace {

constexpr int kMaxAlpha = 8;

/**
 * out (a x b) = L (a x n) * in (n x k) * R (k x b), all small dense,
 * double precision. Buffers are caller-provided flat arrays.
 */
void
sandwich(const Matrix &L, const double *in, int n, int k, const Matrix &R,
         double *out)
{
    winomc_assert(L.cols() == n && R.rows() == k, "sandwich shape");
    const int a = L.rows();
    const int b = R.cols();
    std::array<double, kMaxAlpha * kMaxAlpha> tmp{};
    // tmp = L * in (a x k)
    for (int i = 0; i < a; ++i) {
        for (int j = 0; j < k; ++j) {
            double acc = 0.0;
            for (int t = 0; t < n; ++t)
                acc += L.at(i, t) * in[t * k + j];
            tmp[size_t(i * k + j)] = acc;
        }
    }
    // out = tmp * R (a x b)
    for (int i = 0; i < a; ++i) {
        for (int j = 0; j < b; ++j) {
            double acc = 0.0;
            for (int t = 0; t < k; ++t)
                acc += tmp[size_t(i * k + t)] * R.at(t, j);
            out[i * b + j] = acc;
        }
    }
}

} // namespace

WinoTiles
transformInput(const Tensor &x, const WinogradAlgo &algo)
{
    winomc_assert(algo.alpha <= kMaxAlpha, "alpha too large");
    TileGrid grid(x.h(), x.w(), algo);
    WinoTiles out(algo.alpha, x.c(), x.n(), grid.tiles());

    const int a = algo.alpha;
    std::array<double, kMaxAlpha * kMaxAlpha> patch{};
    std::array<double, kMaxAlpha * kMaxAlpha> tx{};

    for (int b = 0; b < x.n(); ++b) {
        for (int c = 0; c < x.c(); ++c) {
            for (int th = 0; th < grid.tilesH; ++th) {
                for (int tw = 0; tw < grid.tilesW; ++tw) {
                    const int r0 = grid.tileRow(th);
                    const int c0 = grid.tileCol(tw);
                    for (int i = 0; i < a; ++i) {
                        for (int j = 0; j < a; ++j) {
                            int rr = r0 + i, cc = c0 + j;
                            bool in_map = rr >= 0 && rr < x.h() &&
                                          cc >= 0 && cc < x.w();
                            patch[size_t(i * a + j)] =
                                in_map ? double(x.at(b, c, rr, cc)) : 0.0;
                        }
                    }
                    sandwich(algo.BT, patch.data(), a, a, algo.B,
                             tx.data());
                    const int t = th * grid.tilesW + tw;
                    for (int uv = 0; uv < a * a; ++uv)
                        out.at(uv, c, b, t) = float(tx[size_t(uv)]);
                }
            }
        }
    }
    return out;
}

Tensor
transformInputAdjoint(const WinoTiles &dX, const WinogradAlgo &algo,
                      int h, int w)
{
    TileGrid grid(h, w, algo);
    winomc_assert(grid.tiles() == dX.tiles(),
                  "tile count mismatch in input adjoint");
    Tensor dx(dX.batch(), dX.channels(), h, w);

    const int a = algo.alpha;
    std::array<double, kMaxAlpha * kMaxAlpha> tile{};
    std::array<double, kMaxAlpha * kMaxAlpha> sp{};

    for (int b = 0; b < dX.batch(); ++b) {
        for (int c = 0; c < dX.channels(); ++c) {
            for (int th = 0; th < grid.tilesH; ++th) {
                for (int tw = 0; tw < grid.tilesW; ++tw) {
                    const int t = th * grid.tilesW + tw;
                    for (int uv = 0; uv < a * a; ++uv)
                        tile[size_t(uv)] = double(dX.at(uv, c, b, t));
                    // Adjoint of X = BT x B is dx = B dX B^T.
                    sandwich(algo.B, tile.data(), a, a, algo.BT, sp.data());
                    const int r0 = grid.tileRow(th);
                    const int c0 = grid.tileCol(tw);
                    for (int i = 0; i < a; ++i) {
                        for (int j = 0; j < a; ++j) {
                            int rr = r0 + i, cc = c0 + j;
                            if (rr < 0 || rr >= h || cc < 0 || cc >= w)
                                continue;
                            dx.at(b, c, rr, cc) +=
                                float(sp[size_t(i * a + j)]);
                        }
                    }
                }
            }
        }
    }
    return dx;
}

WinoWeights
transformWeights(const Tensor &w, const WinogradAlgo &algo)
{
    winomc_assert(w.h() == algo.r && w.w() == algo.r,
                  "weight size does not match algorithm r");
    WinoWeights out(algo.alpha, w.n(), w.c());
    const int a = algo.alpha;
    const int r = algo.r;
    std::array<double, kMaxAlpha * kMaxAlpha> ker{};
    std::array<double, kMaxAlpha * kMaxAlpha> tw{};

    for (int j = 0; j < w.n(); ++j) {
        for (int i = 0; i < w.c(); ++i) {
            for (int y = 0; y < r; ++y)
                for (int x = 0; x < r; ++x)
                    ker[size_t(y * r + x)] = double(w.at(j, i, y, x));
            sandwich(algo.G, ker.data(), r, r, algo.GT, tw.data());
            for (int uv = 0; uv < a * a; ++uv)
                out.at(uv, j, i) = float(tw[size_t(uv)]);
        }
    }
    return out;
}

Tensor
transformWeightsAdjoint(const WinoWeights &dW, const WinogradAlgo &algo)
{
    const int a = algo.alpha;
    const int r = algo.r;
    Tensor dw(dW.outChannels(), dW.inChannels(), r, r);
    std::array<double, kMaxAlpha * kMaxAlpha> tile{};
    std::array<double, kMaxAlpha * kMaxAlpha> sp{};

    for (int j = 0; j < dW.outChannels(); ++j) {
        for (int i = 0; i < dW.inChannels(); ++i) {
            for (int uv = 0; uv < a * a; ++uv)
                tile[size_t(uv)] = double(dW.at(uv, j, i));
            // Adjoint of W = G w G^T is dw = G^T dW G.
            sandwich(algo.GT, tile.data(), a, a, algo.G, sp.data());
            for (int y = 0; y < r; ++y)
                for (int x = 0; x < r; ++x)
                    dw.at(j, i, y, x) = float(sp[size_t(y * r + x)]);
        }
    }
    return dw;
}

WinoTiles
elementwiseForward(const WinoTiles &X, const WinoWeights &W)
{
    winomc_assert(X.alphaEdge() == W.alphaEdge(),
                  "algo mismatch between tiles and weights");
    winomc_assert(X.channels() == W.inChannels(),
                  "channel mismatch: tiles ", X.channels(), " weights ",
                  W.inChannels());
    WinoTiles Y(X.alphaEdge(), W.outChannels(), X.batch(), X.tiles());
    const int bt = X.batch() * X.tiles();

    for (int uv = 0; uv < X.uvCount(); ++uv) {
        for (int j = 0; j < W.outChannels(); ++j) {
            float *yrow = Y.row(uv, j);
            for (int i = 0; i < W.inChannels(); ++i) {
                const float wji = W.at(uv, j, i);
                if (wji == 0.0f)
                    continue;
                const float *xrow = X.row(uv, i);
                for (int k = 0; k < bt; ++k)
                    yrow[k] += wji * xrow[k];
            }
        }
    }
    return Y;
}

WinoTiles
elementwiseBackwardData(const WinoTiles &dY, const WinoWeights &W)
{
    winomc_assert(dY.channels() == W.outChannels(),
                  "channel mismatch in backward data");
    WinoTiles dX(dY.alphaEdge(), W.inChannels(), dY.batch(), dY.tiles());
    const int bt = dY.batch() * dY.tiles();

    for (int uv = 0; uv < dY.uvCount(); ++uv) {
        for (int j = 0; j < W.outChannels(); ++j) {
            const float *dyrow = dY.row(uv, j);
            for (int i = 0; i < W.inChannels(); ++i) {
                const float wji = W.at(uv, j, i);
                if (wji == 0.0f)
                    continue;
                float *dxrow = dX.row(uv, i);
                for (int k = 0; k < bt; ++k)
                    dxrow[k] += wji * dyrow[k];
            }
        }
    }
    return dX;
}

WinoWeights
elementwiseGradWeights(const WinoTiles &dY, const WinoTiles &X)
{
    winomc_assert(dY.batch() == X.batch() && dY.tiles() == X.tiles() &&
                  dY.alphaEdge() == X.alphaEdge(),
                  "shape mismatch in weight gradient");
    WinoWeights dW(X.alphaEdge(), dY.channels(), X.channels());
    const int bt = X.batch() * X.tiles();

    for (int uv = 0; uv < X.uvCount(); ++uv) {
        for (int j = 0; j < dY.channels(); ++j) {
            const float *dyrow = dY.row(uv, j);
            for (int i = 0; i < X.channels(); ++i) {
                const float *xrow = X.row(uv, i);
                double acc = 0.0;
                for (int k = 0; k < bt; ++k)
                    acc += double(dyrow[k]) * xrow[k];
                dW.at(uv, j, i) = float(acc);
            }
        }
    }
    return dW;
}

Tensor
inverseTransform(const WinoTiles &Y, const WinogradAlgo &algo, int h,
                 int w)
{
    TileGrid grid(h, w, algo);
    winomc_assert(grid.tiles() == Y.tiles(),
                  "tile count mismatch in inverse transform");
    Tensor y(Y.batch(), Y.channels(), h, w);
    const int a = algo.alpha;
    const int m = algo.m;
    std::array<double, kMaxAlpha * kMaxAlpha> tile{};
    std::array<double, kMaxAlpha * kMaxAlpha> sp{};

    for (int b = 0; b < Y.batch(); ++b) {
        for (int c = 0; c < Y.channels(); ++c) {
            for (int th = 0; th < grid.tilesH; ++th) {
                for (int tw = 0; tw < grid.tilesW; ++tw) {
                    const int t = th * grid.tilesW + tw;
                    for (int uv = 0; uv < a * a; ++uv)
                        tile[size_t(uv)] = double(Y.at(uv, c, b, t));
                    sandwich(algo.AT, tile.data(), a, a, algo.A, sp.data());
                    for (int i = 0; i < m; ++i) {
                        for (int j = 0; j < m; ++j) {
                            int rr = th * m + i, cc = tw * m + j;
                            if (rr >= h || cc >= w)
                                continue; // boundary crop
                            y.at(b, c, rr, cc) = float(sp[size_t(i*m + j)]);
                        }
                    }
                }
            }
        }
    }
    return y;
}

WinoTiles
inverseTransformAdjoint(const Tensor &dy, const WinogradAlgo &algo)
{
    TileGrid grid(dy.h(), dy.w(), algo);
    WinoTiles dY(algo.alpha, dy.c(), dy.n(), grid.tiles());
    const int a = algo.alpha;
    const int m = algo.m;
    std::array<double, kMaxAlpha * kMaxAlpha> patch{};
    std::array<double, kMaxAlpha * kMaxAlpha> tile{};

    for (int b = 0; b < dy.n(); ++b) {
        for (int c = 0; c < dy.c(); ++c) {
            for (int th = 0; th < grid.tilesH; ++th) {
                for (int tw = 0; tw < grid.tilesW; ++tw) {
                    for (int i = 0; i < m; ++i) {
                        for (int j = 0; j < m; ++j) {
                            int rr = th * m + i, cc = tw * m + j;
                            bool in_map = rr < dy.h() && cc < dy.w();
                            patch[size_t(i * m + j)] =
                                in_map ? double(dy.at(b, c, rr, cc)) : 0.0;
                        }
                    }
                    // Adjoint of y = AT Y A is dY = A dy A^T.
                    sandwich(algo.A, patch.data(), m, m, algo.AT,
                             tile.data());
                    const int t = th * grid.tilesW + tw;
                    for (int uv = 0; uv < a * a; ++uv)
                        dY.at(uv, c, b, t) = float(tile[size_t(uv)]);
                }
            }
        }
    }
    return dY;
}

Tensor
winogradForward(const Tensor &x, const WinoWeights &W,
                const WinogradAlgo &algo)
{
    WinoTiles X = transformInput(x, algo);
    WinoTiles Y = elementwiseForward(X, W);
    return inverseTransform(Y, algo, x.h(), x.w());
}

Tensor
winogradBackwardData(const Tensor &dy, const WinoWeights &W,
                     const WinogradAlgo &algo, int h, int w)
{
    WinoTiles dY = inverseTransformAdjoint(dy, algo);
    WinoTiles dX = elementwiseBackwardData(dY, W);
    return transformInputAdjoint(dX, algo, h, w);
}

WinoWeights
winogradGradWeights(const Tensor &x, const Tensor &dy,
                    const WinogradAlgo &algo)
{
    WinoTiles X = transformInput(x, algo);
    WinoTiles dY = inverseTransformAdjoint(dy, algo);
    return elementwiseGradWeights(dY, X);
}

Tensor
directConvForward(const Tensor &x, const Tensor &w)
{
    winomc_assert(x.c() == w.c(), "channel mismatch in direct conv");
    winomc_assert(w.h() == w.w() && w.h() % 2 == 1,
                  "direct conv expects odd square filters");
    const int r = w.h();
    const int pad = (r - 1) / 2;
    Tensor y(x.n(), w.n(), x.h(), x.w());

    for (int b = 0; b < x.n(); ++b) {
        for (int j = 0; j < w.n(); ++j) {
            for (int oy = 0; oy < x.h(); ++oy) {
                for (int ox = 0; ox < x.w(); ++ox) {
                    double acc = 0.0;
                    for (int i = 0; i < x.c(); ++i) {
                        for (int ky = 0; ky < r; ++ky) {
                            int iy = oy + ky - pad;
                            if (iy < 0 || iy >= x.h())
                                continue;
                            for (int kx = 0; kx < r; ++kx) {
                                int ix = ox + kx - pad;
                                if (ix < 0 || ix >= x.w())
                                    continue;
                                acc += double(x.at(b, i, iy, ix)) *
                                       w.at(j, i, ky, kx);
                            }
                        }
                    }
                    y.at(b, j, oy, ox) = float(acc);
                }
            }
        }
    }
    return y;
}

Tensor
directConvBackwardData(const Tensor &dy, const Tensor &w)
{
    winomc_assert(dy.c() == w.n(), "channel mismatch in backward data");
    const int r = w.h();
    const int pad = (r - 1) / 2;
    Tensor dx(dy.n(), w.c(), dy.h(), dy.w());

    for (int b = 0; b < dy.n(); ++b) {
        for (int i = 0; i < w.c(); ++i) {
            for (int iy = 0; iy < dy.h(); ++iy) {
                for (int ix = 0; ix < dy.w(); ++ix) {
                    double acc = 0.0;
                    for (int j = 0; j < dy.c(); ++j) {
                        for (int ky = 0; ky < r; ++ky) {
                            int oy = iy - ky + pad;
                            if (oy < 0 || oy >= dy.h())
                                continue;
                            for (int kx = 0; kx < r; ++kx) {
                                int ox = ix - kx + pad;
                                if (ox < 0 || ox >= dy.w())
                                    continue;
                                acc += double(dy.at(b, j, oy, ox)) *
                                       w.at(j, i, ky, kx);
                            }
                        }
                    }
                    dx.at(b, i, iy, ix) = float(acc);
                }
            }
        }
    }
    return dx;
}

Tensor
directConvGradWeights(const Tensor &x, const Tensor &dy, int r)
{
    winomc_assert(x.n() == dy.n() && x.h() == dy.h() && x.w() == dy.w(),
                  "shape mismatch in direct weight gradient");
    const int pad = (r - 1) / 2;
    Tensor dw(dy.c(), x.c(), r, r);

    for (int j = 0; j < dy.c(); ++j) {
        for (int i = 0; i < x.c(); ++i) {
            for (int ky = 0; ky < r; ++ky) {
                for (int kx = 0; kx < r; ++kx) {
                    double acc = 0.0;
                    for (int b = 0; b < x.n(); ++b) {
                        for (int oy = 0; oy < x.h(); ++oy) {
                            int iy = oy + ky - pad;
                            if (iy < 0 || iy >= x.h())
                                continue;
                            for (int ox = 0; ox < x.w(); ++ox) {
                                int ix = ox + kx - pad;
                                if (ix < 0 || ix >= x.w())
                                    continue;
                                acc += double(dy.at(b, j, oy, ox)) *
                                       x.at(b, i, iy, ix);
                            }
                        }
                    }
                    dw.at(j, i, ky, kx) = float(acc);
                }
            }
        }
    }
    return dw;
}

} // namespace winomc
