/**
 * @file
 * Figure 6: per-worker communication volume per training iteration for
 * one early and one late layer, sweeping the worker count, comparing
 * data-parallel training against MPT with Ng = Nc = sqrt(p)
 * (F(2x2,3x3), no prediction). The weight and tile components are
 * reported separately, matching the figure's stacking.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/table.hh"
#include "mpt/comm_volume.hh"
#include "winograd/algo.hh"
#include "workloads/layers.hh"

using namespace winomc;
using namespace winomc::mpt;

namespace {

void
sweepLayer(const ConvSpec &spec)
{
    Table t("layer " + spec.name + " (" + std::to_string(spec.inCh) +
            "->" + std::to_string(spec.outCh) + " @" +
            std::to_string(spec.h) + "^2), per-worker MiB per iteration");
    t.header({"p", "DP weights", "MPT weights", "MPT tiles", "MPT total",
              "MPT/DP"});
    const auto &algo = algoF2x2_3x3();

    for (int p : {4, 16, 64, 256, 1024}) {
        // Ng capped at the F(2x2,3x3) tile-element count (16).
        int side = std::min(16, int(std::lround(std::sqrt(double(p)))));
        memnet::ClusterShape shape{side, p / side};
        CommVolume dp = dataParallelCommVolume(spec.weightElems(), p);
        CommVolume mp = mptCommVolume(spec, algo, shape, nullptr);
        t.row()
            .cell(int64_t(p))
            .cell(dp.total() / kMiB, 3)
            .cell(mp.weightBytes / kMiB, 3)
            .cell(mp.tileBytes / kMiB, 3)
            .cell(mp.total() / kMiB, 3)
            .cell(mp.total() / dp.total(), 2);
    }
    t.print();
}

} // namespace

int
main()
{
    std::printf("Figure 6: per-worker communication, DP vs MPT "
                "(Ng = Nc = sqrt(p))\n\n");
    auto layers = workloads::tableTwoLayers();
    sweepLayer(layers[0]); // Early
    sweepLayer(layers[4]); // Late-B
    std::printf("expected shape: DP flat in p; MPT falls ~1/sqrt(p); "
                "MPT worse than DP on the early layer (tile traffic), "
                "far better on the late layer (weight traffic).\n");
    return 0;
}
