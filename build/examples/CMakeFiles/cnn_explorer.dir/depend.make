# Empty dependencies file for cnn_explorer.
# This may be replaced when dependencies are built.
