# Empty dependencies file for fig06_comm_per_layer.
# This may be replaced when dependencies are built.
