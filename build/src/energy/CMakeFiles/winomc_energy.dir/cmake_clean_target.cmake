file(REMOVE_RECURSE
  "libwinomc_energy.a"
)
