/**
 * @file
 * Winograd filtering algorithm descriptor F(m x m, r x r).
 *
 * Holds the double-precision transform triple (B^T, G, A^T) generated
 * exactly by the Toom-Cook generator, plus derived metadata. Supports the
 * transforms the paper evaluates — F(2x2,3x3), F(4x4,3x3), F(2x2,5x5),
 * the 1D F(2,3) — plus F(6x6,3x3) for the auto-tuner candidate set.
 */

#ifndef WINOMC_WINOGRAD_ALGO_HH
#define WINOMC_WINOGRAD_ALGO_HH

#include <string>

#include "tensor/matrix.hh"

namespace winomc {

/**
 * One Winograd algorithm instance. 2D algorithms are separable: the same
 * 1D triple is applied to rows and columns (tiles are alpha x alpha).
 */
struct WinogradAlgo
{
    int m;      ///< outputs per tile edge
    int r;      ///< filter taps per edge
    int alpha;  ///< tile edge m + r - 1

    Matrix BT;  ///< alpha x alpha input transform
    Matrix G;   ///< alpha x r   weight transform
    Matrix AT;  ///< m x alpha   inverse (output) transform

    // Cached transposes (used in gradients / adjoints).
    Matrix B;   ///< BT^T
    Matrix GT;  ///< G^T
    Matrix A;   ///< AT^T

    std::string name() const;

    /** Winograd-domain weight element count per (i, j) pair: alpha^2. */
    int tileElems() const { return alpha * alpha; }
};

/** Build F(m x m, r x r) from the exact Toom-Cook generator. */
WinogradAlgo makeWinograd(int m, int r);

/** The transforms used in the paper's evaluation. */
const WinogradAlgo &algoF2x2_3x3();
const WinogradAlgo &algoF4x4_3x3();
const WinogradAlgo &algoF2x2_5x5();
/** F(6x6,3x3): alpha = 8, the largest tile the micro-kernel panel
 *  layout supports (mk::kMaxAlpha) — the auto-tuner's top candidate. */
const WinogradAlgo &algoF6x6_3x3();
/** 1D F(2,3): tile 4x1 (for 3x1 filters, Section VII-B). */
const WinogradAlgo &algoF2_3();

/**
 * The shared static F(m x m, 3 x 3) instance for tile edge m in
 * {2, 4, 6} — the auto-tuner's r = 3 candidate family (larger kernels
 * and strides reach these through DWM decomposition). Dies on any
 * other m.
 */
const WinogradAlgo &algoForTile(int m);

} // namespace winomc

#endif // WINOMC_WINOGRAD_ALGO_HH
