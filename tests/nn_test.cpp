/**
 * @file
 * Tests for the neural-network substrate: layer forward/backward
 * correctness, gradient checks, join-mode semantics, and end-to-end
 * training convergence on the synthetic dataset.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/basic_layers.hh"
#include "nn/batchnorm.hh"
#include "nn/conv_layer.hh"
#include "nn/dataset.hh"
#include "nn/join.hh"
#include "nn/loss.hh"
#include "nn/trainer.hh"
#include "winograd/algo.hh"

namespace winomc::nn {

// This suite validates the fp32 pipeline against fp32 oracles (direct
// convolution, numeric gradients, bitwise stage parity), so the
// activation storage precision is pinned to fp32 regardless of
// WINOMC_PREC. WINOMC_SPARSE stays env-driven on purpose: sparse
// execution is bitwise identical and must keep passing here.
[[maybe_unused]] const bool kPinFp32 = [] {
    setPrec(Prec::F32);
    return true;
}();

namespace {

TEST(ReLULayer, ForwardClampsAndBackwardMasks)
{
    ReLU relu;
    Tensor x(1, 1, 2, 2);
    x.at(0, 0, 0, 0) = -1.0f;
    x.at(0, 0, 0, 1) = 2.0f;
    x.at(0, 0, 1, 0) = 0.0f;
    x.at(0, 0, 1, 1) = -0.5f;
    Tensor y = relu.forward(x, true);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 2.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 1, 0), 0.0f);

    Tensor dy(1, 1, 2, 2);
    dy.fill(3.0f);
    Tensor dx = relu.backward(dy);
    EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 1), 3.0f);
    EXPECT_FLOAT_EQ(dx.at(0, 0, 1, 1), 0.0f);
}

TEST(MaxPool2Layer, ForwardPicksMaxBackwardRoutes)
{
    MaxPool2 pool;
    Tensor x(1, 1, 4, 4);
    float v = 0.0f;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            x.at(0, 0, i, j) = v++;
    Tensor y = pool.forward(x, true);
    ASSERT_EQ(y.h(), 2);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 15.0f);

    Tensor dy(1, 1, 2, 2);
    dy.fill(1.0f);
    Tensor dx = pool.backward(dy);
    EXPECT_FLOAT_EQ(dx.at(0, 0, 1, 1), 1.0f); // winner of block (0,0)
    EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(dx.at(0, 0, 3, 3), 1.0f);
}

TEST(AvgPool2Layer, ForwardAveragesBackwardSpreads)
{
    AvgPool2 pool;
    Tensor x(1, 1, 4, 4);
    float v = 0.0f;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            x.at(0, 0, i, j) = v++;
    Tensor y = pool.forward(x, true);
    ASSERT_EQ(y.h(), 2);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), (0 + 1 + 4 + 5) / 4.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), (10 + 11 + 14 + 15) / 4.0f);

    Tensor dy(1, 1, 2, 2);
    dy.fill(4.0f);
    Tensor dx = pool.backward(dy);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_FLOAT_EQ(dx.at(0, 0, i, j), 1.0f);
}

TEST(BatchNormLayer, NormalizesPerChannel)
{
    Rng rng(6);
    BatchNorm2d bn(3);
    Tensor x(4, 3, 5, 5);
    x.fillGaussian(rng, 2.0f, 3.0f);
    Tensor y = bn.forward(x, true);

    // With gamma=1, beta=0 the training output is standardized.
    for (int c = 0; c < 3; ++c) {
        double sum = 0, sum2 = 0;
        int n = 0;
        for (int b = 0; b < 4; ++b)
            for (int i = 0; i < 5; ++i)
                for (int j = 0; j < 5; ++j) {
                    sum += y.at(b, c, i, j);
                    sum2 += double(y.at(b, c, i, j)) * y.at(b, c, i, j);
                    ++n;
                }
        EXPECT_NEAR(sum / n, 0.0, 1e-4);
        EXPECT_NEAR(sum2 / n, 1.0, 1e-2);
    }
}

TEST(BatchNormLayer, RunningStatsConvergeAndEvalUsesThem)
{
    Rng rng(7);
    BatchNorm2d bn(1, 1e-5f, 0.5f);
    for (int step = 0; step < 20; ++step) {
        Tensor x(8, 1, 4, 4);
        x.fillGaussian(rng, 5.0f, 2.0f);
        bn.forward(x, true);
    }
    EXPECT_NEAR(bn.runningMean(0), 5.0f, 0.5f);
    EXPECT_NEAR(bn.runningVar(0), 4.0f, 1.0f);

    // Eval mode uses the running stats: a constant input maps to a
    // deterministic value independent of the batch.
    Tensor x(2, 1, 2, 2);
    x.fill(5.0f);
    Tensor y = bn.forward(x, false);
    EXPECT_NEAR(y.at(0, 0, 0, 0), 0.0f, 0.3f);
}

TEST(BatchNormLayer, GradientCheck)
{
    Rng rng(8);
    BatchNorm2d bn(2);
    Tensor x(3, 2, 2, 2);
    x.fillUniform(rng, -2.0f, 2.0f);

    auto loss = [&](const Tensor &xt) {
        // Fresh instance so running stats don't drift between probes.
        BatchNorm2d probe(2);
        Tensor y = probe.forward(xt, true);
        double l = 0;
        for (int b = 0; b < y.n(); ++b)
            for (int c = 0; c < y.c(); ++c)
                for (int i = 0; i < y.h(); ++i)
                    for (int j = 0; j < y.w(); ++j) {
                        double v = y.at(b, c, i, j);
                        l += 0.5 * v * v * (1 + 0.1 * (b + c + i + j));
                    }
        return l;
    };

    Tensor y = bn.forward(x, true);
    Tensor dy(y.n(), y.c(), y.h(), y.w());
    for (int b = 0; b < y.n(); ++b)
        for (int c = 0; c < y.c(); ++c)
            for (int i = 0; i < y.h(); ++i)
                for (int j = 0; j < y.w(); ++j)
                    dy.at(b, c, i, j) = y.at(b, c, i, j) *
                                        float(1 + 0.1 * (b + c + i + j));
    Tensor dx = bn.backward(dy);

    const float eps = 1e-3f;
    for (int b = 0; b < 3; ++b) {
        for (int c = 0; c < 2; ++c) {
            Tensor xp = x, xm = x;
            xp.at(b, c, 0, 1) += eps;
            xm.at(b, c, 0, 1) -= eps;
            double num = (loss(xp) - loss(xm)) / (2.0 * eps);
            EXPECT_NEAR(num, double(dx.at(b, c, 0, 1)),
                        5e-2 * std::max(1.0, std::abs(num)))
                << b << "," << c;
        }
    }
}

TEST(BatchNormLayer, TrainableAffineMovesWithStep)
{
    Rng rng(9);
    BatchNorm2d bn(1);
    Tensor x(4, 1, 3, 3);
    x.fillGaussian(rng);
    Tensor y = bn.forward(x, true);
    bn.backward(y); // dL/dy = y  =>  dgamma = sum y*xhat > 0
    float g0 = bn.gamma(0);
    bn.step(0.1f);
    EXPECT_NE(bn.gamma(0), g0);
}

TEST(GlobalAvgPoolLayer, MeanAndUniformBackward)
{
    GlobalAvgPool gap;
    Tensor x(2, 3, 4, 4);
    Rng rng(1);
    x.fillUniform(rng);
    Tensor y = gap.forward(x, true);
    double acc = 0;
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            acc += x.at(1, 2, i, j);
    EXPECT_NEAR(y.at(1, 2, 0, 0), acc / 16.0, 1e-5);

    Tensor dy(2, 3, 1, 1);
    dy.fill(16.0f);
    Tensor dx = gap.backward(dy);
    EXPECT_FLOAT_EQ(dx.at(0, 0, 2, 2), 1.0f);
}

TEST(DenseLayer, GradientCheck)
{
    Rng rng(2);
    Dense dense(6, 3, rng);
    Tensor x(2, 1, 2, 3);
    x.fillUniform(rng);

    Tensor y = dense.forward(x, true);
    Tensor dx = dense.backward(y); // dL/dy = y for L = 0.5||y||^2

    auto loss = [&](const Tensor &xt) {
        Tensor yy = dense.forward(xt, false);
        double l = 0;
        for (int n = 0; n < yy.n(); ++n)
            for (int o = 0; o < yy.w(); ++o)
                l += 0.5 * double(yy.at(n, 0, 0, o)) * yy.at(n, 0, 0, o);
        return l;
    };

    const float eps = 1e-3f;
    for (int n = 0; n < 2; ++n) {
        for (int j = 0; j < 3; ++j) {
            Tensor xp = x, xm = x;
            xp.at(n, 0, 0, j) += eps;
            xm.at(n, 0, 0, j) -= eps;
            double num = (loss(xp) - loss(xm)) / (2.0 * eps);
            EXPECT_NEAR(num, double(dx.at(n, 0, 0, j)),
                        1e-2 * std::max(1.0, std::abs(num)));
        }
    }
}

TEST(SoftmaxXent, GradientRowsSumToZeroAndLossPositive)
{
    Rng rng(3);
    Tensor logits(4, 1, 1, 5);
    logits.fillUniform(rng, -2.0f, 2.0f);
    std::vector<int> labels{0, 2, 4, 1};
    LossResult res = softmaxCrossEntropy(logits, labels);
    EXPECT_GT(res.loss, 0.0);
    for (int b = 0; b < 4; ++b) {
        double s = 0;
        for (int c = 0; c < 5; ++c)
            s += res.dlogits.at(b, 0, 0, c);
        EXPECT_NEAR(s, 0.0, 1e-6);
    }
}

TEST(SoftmaxXent, PerfectPredictionLowLoss)
{
    Tensor logits(1, 1, 1, 3);
    logits.at(0, 0, 0, 1) = 20.0f;
    LossResult res = softmaxCrossEntropy(logits, {1});
    EXPECT_LT(res.loss, 1e-6);
    EXPECT_EQ(res.correct, 1);
}

TEST(ConvLayerModes, IdenticalFunctionAtInit)
{
    Rng rng_a(7), rng_b(7), rng_c(7);
    const auto &algo = algoF2x2_3x3();
    ConvLayer direct(3, 4, 3, ConvMode::Direct, algo, rng_a);
    ConvLayer wino_s(3, 4, 3, ConvMode::WinogradSpatial, algo, rng_b);
    ConvLayer wino_l(3, 4, 3, ConvMode::WinogradLayer, algo, rng_c);

    Rng rng_x(8);
    Tensor x(2, 3, 8, 8);
    x.fillUniform(rng_x);

    Tensor yd = direct.forward(x, false);
    Tensor ys = wino_s.forward(x, false);
    Tensor yl = wino_l.forward(x, false);
    EXPECT_LT(yd.maxAbsDiff(ys), 1e-4f);
    EXPECT_LT(yd.maxAbsDiff(yl), 1e-4f);
}

TEST(ConvLayerModes, WinogradLayerHasMoreParams)
{
    Rng rng(7);
    const auto &algo = algoF2x2_3x3();
    ConvLayer direct(3, 4, 3, ConvMode::Direct, algo, rng);
    ConvLayer wino_l(3, 4, 3, ConvMode::WinogradLayer, algo, rng);
    EXPECT_EQ(direct.paramCount(), size_t(3) * 4 * 9);
    // Winograd-domain weights: alpha^2 = 16 elements per (i, j).
    EXPECT_EQ(wino_l.paramCount(), size_t(3) * 4 * 16);
}

TEST(ConvLayerModes, TrainingStepReducesLoss)
{
    Rng rng(9);
    const auto &algo = algoF2x2_3x3();
    for (ConvMode mode : {ConvMode::Direct, ConvMode::WinogradSpatial,
                          ConvMode::WinogradLayer}) {
        ConvLayer conv(2, 2, 3, mode, algo, rng);
        Tensor x(1, 2, 6, 6);
        x.fillUniform(rng);

        auto loss_of = [&](Module &mod) {
            Tensor y = mod.forward(x, true);
            double l = 0;
            for (int b = 0; b < y.n(); ++b)
                for (int c = 0; c < y.c(); ++c)
                    for (int i = 0; i < y.h(); ++i)
                        for (int j = 0; j < y.w(); ++j)
                            l += 0.5 * double(y.at(b, c, i, j)) *
                                 y.at(b, c, i, j);
            return l;
        };

        double before = loss_of(conv);
        Tensor y = conv.forward(x, true);
        conv.backward(y);
        conv.step(0.01f);
        double after = loss_of(conv);
        EXPECT_LT(after, before) << "mode " << int(mode);
    }
}

TEST(JoinModes, AgreeWhenBranchOutputsPositive)
{
    // relu(mean(a, b)) == mean(relu(a), relu(b)) iff a, b >= 0; with all
    // branch outputs positive both joins are the identity mean.
    Rng rng(11);
    const auto &algo = algoF2x2_3x3();
    auto std_join = makeFractalPair(1, 2, 3, JoinMode::Standard,
                                    ConvMode::Direct, algo, rng);
    Rng rng2(11);
    auto mod_join = makeFractalPair(1, 2, 3, JoinMode::Modified,
                                    ConvMode::Direct, algo, rng2);

    Tensor x(1, 1, 6, 6);
    x.fill(0.0f); // zero input -> zero pre-activations -> both joins == 0
    Tensor ys = std_join->forward(x, false);
    Tensor ym = mod_join->forward(x, false);
    EXPECT_LT(ys.maxAbsDiff(ym), 1e-6f);
}

TEST(JoinModes, ModifiedJoinGradientCheck)
{
    Rng rng(12);
    const auto &algo = algoF2x2_3x3();
    auto block = makeFractalPair(1, 1, 3, JoinMode::Modified,
                                 ConvMode::Direct, algo, rng);
    Tensor x(1, 1, 4, 4);
    x.fillUniform(rng, 0.1f, 1.0f);

    auto loss = [&](const Tensor &xt) {
        Tensor y = block->forward(xt, true);
        double l = 0;
        for (int i = 0; i < y.h(); ++i)
            for (int j = 0; j < y.w(); ++j)
                l += 0.5 * double(y.at(0, 0, i, j)) * y.at(0, 0, i, j);
        return l;
    };

    Tensor y = block->forward(x, true);
    Tensor dx = block->backward(y);

    const float eps = 1e-3f;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            Tensor xp = x, xm = x;
            xp.at(0, 0, i, j) += eps;
            xm.at(0, 0, i, j) -= eps;
            double num = (loss(xp) - loss(xm)) / (2.0 * eps);
            EXPECT_NEAR(num, double(dx.at(0, 0, i, j)),
                        2e-2 * std::max(1.0, std::abs(num)));
        }
    }
}

TEST(DatasetGen, ShapesAndDeterminism)
{
    Rng rng_a(21), rng_b(21);
    Dataset a = makeShapeDataset(50, 12, 4, rng_a);
    Dataset b = makeShapeDataset(50, 12, 4, rng_b);
    ASSERT_EQ(a.size(), 50u);
    EXPECT_EQ(a.classes, 4);
    for (size_t k = 0; k < a.size(); ++k) {
        EXPECT_EQ(a.labels[k], b.labels[k]);
        EXPECT_FLOAT_EQ(a.images[k].maxAbsDiff(b.images[k]), 0.0f);
        EXPECT_GE(a.labels[k], 0);
        EXPECT_LT(a.labels[k], 4);
    }
}

TEST(DatasetGen, BatchStacksImages)
{
    Rng rng(22);
    Dataset ds = makeShapeDataset(10, 8, 3, rng);
    std::vector<int> labels;
    Tensor batch = ds.batch(2, 4, labels);
    EXPECT_EQ(batch.n(), 4);
    EXPECT_EQ(batch.h(), 8);
    ASSERT_EQ(labels.size(), 4u);
    EXPECT_FLOAT_EQ(batch.at(1, 0, 3, 3), ds.images[3].at(3, 3));
}

/// Identity layer that records the batch size of every training-mode
/// forward pass (lets the tests observe exactly what train() feeds the
/// model).
class BatchSpy : public Module
{
  public:
    Tensor forward(const Tensor &x, bool train) override
    {
        if (train)
            trainBatches.push_back(x.n());
        return x;
    }
    Tensor backward(const Tensor &dy) override { return dy; }
    std::string name() const override { return "batch-spy"; }

    std::vector<int> trainBatches;
};

/// Regression: the trailing partial batch used to be silently dropped
/// (23 samples at batchSize 8 trained only 16 per epoch).
TEST(Training, TrailingPartialBatchIsTrained)
{
    Rng rng(41);
    Dataset train_set = makeShapeDataset(23, 8, 3, rng);
    Dataset val_set = makeShapeDataset(8, 8, 3, rng);

    Sequential net;
    auto spy_owned = std::make_unique<BatchSpy>();
    BatchSpy *spy = spy_owned.get();
    net.add(std::move(spy_owned));
    net.add(std::make_unique<Dense>(8 * 8, 3, rng));

    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batchSize = 8;
    train(net, train_set, val_set, cfg, rng);

    // Each epoch must touch every sample exactly once: 8 + 8 + 7.
    ASSERT_EQ(spy->trainBatches.size(), 6u);
    for (int e = 0; e < 2; ++e) {
        int samples = 0;
        for (int b = 0; b < 3; ++b) {
            EXPECT_GT(spy->trainBatches[size_t(e * 3 + b)], 0);
            samples += spy->trainBatches[size_t(e * 3 + b)];
        }
        EXPECT_EQ(samples, 23) << "epoch " << e;
    }
}

/// Regression: batchSize > dataset size used to make training a
/// complete no-op; it must degrade to one small batch per epoch that
/// still learns.
TEST(Training, BatchLargerThanDatasetStillLearns)
{
    Rng rng(42);
    Dataset train_set = makeShapeDataset(5, 8, 2, rng);
    Dataset val_set = makeShapeDataset(8, 8, 2, rng);

    Sequential net;
    auto spy_owned = std::make_unique<BatchSpy>();
    BatchSpy *spy = spy_owned.get();
    net.add(std::move(spy_owned));
    net.add(std::make_unique<Dense>(8 * 8, 2, rng));

    TrainConfig cfg;
    cfg.epochs = 20;
    cfg.batchSize = 8; // > 5 samples
    cfg.lr = 0.05f;
    auto hist = train(net, train_set, val_set, cfg, rng);

    ASSERT_EQ(spy->trainBatches.size(), 20u);
    for (int b : spy->trainBatches)
        EXPECT_EQ(b, 5);
    EXPECT_LT(hist.back().trainLoss, hist.front().trainLoss);
    EXPECT_GT(hist.back().trainAcc, 0.5);
}

/// An empty dataset stays a warning-level no-op (no crash, no NaNs).
TEST(Training, EmptyDatasetIsANoOp)
{
    Rng rng(43);
    Dataset train_set = makeShapeDataset(0, 8, 2, rng);
    Dataset val_set = makeShapeDataset(4, 8, 2, rng);

    Sequential net;
    net.add(std::make_unique<Dense>(8 * 8, 2, rng));

    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batchSize = 4;
    auto hist = train(net, train_set, val_set, cfg, rng);
    ASSERT_EQ(hist.size(), 2u);
    EXPECT_EQ(hist[0].trainLoss, 0.0);
    EXPECT_EQ(hist[0].trainAcc, 0.0);
}

/// End-to-end: a small CNN with a Winograd-layer conv learns the shape
/// dataset well above chance.
TEST(Training, SmallCnnConverges)
{
    Rng rng(31);
    Dataset train_set = makeShapeDataset(320, 12, 3, rng);
    Dataset val_set = makeShapeDataset(96, 12, 3, rng);

    const auto &algo = algoF2x2_3x3();
    Sequential net;
    net.add(std::make_unique<ConvLayer>(1, 8, 3, ConvMode::WinogradLayer,
                                        algo, rng));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<MaxPool2>());
    net.add(std::make_unique<ConvLayer>(8, 8, 3, ConvMode::WinogradLayer,
                                        algo, rng));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<MaxPool2>());
    net.add(std::make_unique<Dense>(8 * 3 * 3, 3, rng));

    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.batchSize = 16;
    cfg.lr = 0.08f;
    auto hist = train(net, train_set, val_set, cfg, rng);

    ASSERT_EQ(hist.size(), 10u);
    EXPECT_GT(hist.back().valAcc, 0.7) << "chance is 0.33";
    EXPECT_LT(hist.back().trainLoss, hist.front().trainLoss);
}

} // namespace
} // namespace winomc::nn
