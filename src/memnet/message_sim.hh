/**
 * @file
 * Event-driven message-level network simulator.
 *
 * Each (src -> dst, bytes) message follows the topology's minimal route
 * hop by hop; every directed link is a serialized resource (bytes /
 * bandwidth occupancy plus the per-hop SerDes latency). Contention is
 * resolved in event order (virtual cut-through at message granularity).
 *
 * This is the dynamic counterpart of link_model.hh's ideal-schedule
 * bottleneck bound: for the bulk, regular patterns the system model
 * uses (all-to-all tile transfer, neighbor rings) the two agree within
 * the pipeline-fill term, which the tests assert; for irregular
 * patterns this simulator shows the queueing the analytic bound hides.
 */

#ifndef WINOMC_MEMNET_MESSAGE_SIM_HH
#define WINOMC_MEMNET_MESSAGE_SIM_HH

#include <vector>

#include "memnet/link_model.hh"
#include "sim/event_queue.hh"

namespace winomc::memnet {

struct Message
{
    int src;
    int dst;
    double bytes;
    double start = 0.0;   ///< earliest departure, seconds
    double finish = -1.0; ///< filled by the simulation
};

/**
 * Simulate all messages to completion; returns the makespan in seconds.
 * `messages` is updated in place with per-message finish times.
 */
double simulateMessages(const noc::Topology &topo, const LinkSpec &link,
                        std::vector<Message> &messages);

/** Convenience: simulate an all-to-all of bytes_per_pair. */
double simulateAllToAll(const noc::Topology &topo, const LinkSpec &link,
                        double bytes_per_pair);

} // namespace winomc::memnet

#endif // WINOMC_MEMNET_MESSAGE_SIM_HH
