#include "winograd/conv.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <vector>

#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/perfcounters.hh"
#include "common/trace.hh"
#include "winograd/microkernel.hh"
#include "winograd/plan.hh"

namespace winomc {

namespace {

constexpr int kMaxAlpha = 8;

/**
 * Cache/register blocking for the per-uv GEMMs of Equation (2).
 *
 * Each uv slice is a dense (channels) x (batch*tiles) matrix product.
 * The kernels walk the (batch*tiles) axis in panels of kKBlock floats
 * (so a panel of every streamed row stays L1-resident), process output
 * channels in register blocks of kJBlock rows (one input-row read feeds
 * kJBlock outputs), and tile reduction outputs in kIBlock columns so
 * the accumulator block lives on the stack. The innermost panels are
 * the mk:: micro-kernels, vectorized along the unit-stride tile axis.
 */
constexpr int kKBlock = 256;
constexpr int kJBlock = 4;
constexpr int kIBlock = 16;
constexpr int kIUnroll = 8;

/** SoA scratch: kMaxAlpha^2 transform entries x one tile panel. */
using SoaPanel =
    std::array<double, kMaxAlpha * kMaxAlpha * mk::kTilePanel>;

/**
 * out (a x b) = L (a x n) * in (n x k) * R (k x b), all small dense,
 * double precision. Buffers are caller-provided flat arrays. Still
 * used by the per-(j,i) weight transforms, whose tiny extent does not
 * amortize a tile panel.
 */
void
sandwich(const Matrix &L, const double *in, int n, int k, const Matrix &R,
         double *out)
{
    winomc_assert(L.cols() == n && R.rows() == k, "sandwich shape");
    const int a = L.rows();
    const int b = R.cols();
    std::array<double, kMaxAlpha * kMaxAlpha> tmp{};
    // tmp = L * in (a x k)
    for (int i = 0; i < a; ++i) {
        for (int j = 0; j < k; ++j) {
            double acc = 0.0;
            for (int t = 0; t < n; ++t)
                acc += L.at(i, t) * in[t * k + j];
            tmp[size_t(i * k + j)] = acc;
        }
    }
    // out = tmp * R (a x b)
    for (int i = 0; i < a; ++i) {
        for (int j = 0; j < b; ++j) {
            double acc = 0.0;
            for (int t = 0; t < k; ++t)
                acc += tmp[size_t(i * k + t)] * R.at(t, j);
            out[i * b + j] = acc;
        }
    }
}

/**
 * RAII throughput probe: when metrics are on, times the enclosing
 * stage and publishes kernel.<stage>.gflops plus the vector/scalar
 * time split. Costs one relaxed atomic load when metrics are off.
 */
class StageTimer
{
  public:
    StageTimer(const char *stage, double flops)
        : stage(stage), flops(flops), active(metrics::enabled())
    {
        if (active) {
            start = std::chrono::steady_clock::now();
            perf0 = perf::read();
        }
    }
    ~StageTimer()
    {
        if (active) {
            std::chrono::duration<double> d =
                std::chrono::steady_clock::now() - start;
            mk::publishStageMetrics(stage, d.count(), flops);
            // This thread's hardware-counter share of the stage
            // (perf.<stage>.*); joins kernel.<stage>.{seconds,flops}
            // in the winomc-report roofline.
            perf::publishStage(stage, perf0);
        }
    }
    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

  private:
    const char *stage;
    double flops;
    bool active;
    std::chrono::steady_clock::time_point start;
    perf::Reading perf0;
};

} // namespace

void
transformInputInto(const Tensor &x, const WinogradAlgo &algo,
                   WinoTiles &out)
{
    WINOMC_SPAN("wino.xform.input", "wino");
    winomc_assert(algo.alpha <= kMaxAlpha, "alpha too large");
    TileGrid grid(x.h(), x.w(), algo);
    winomc_assert(out.alphaEdge() == algo.alpha &&
                  out.channels() == x.c() && out.batch() == x.n() &&
                  out.tiles() == grid.tiles(),
                  "transformInputInto destination shape mismatch");

    const int a = algo.alpha;
    const int nc = x.c();
    const int h = x.h();
    const int w = x.w();
    const int nt = grid.tiles();
    const auto &K = mk::kernels();
    const double *BT = algo.BT.data();
    const double *B = algo.B.data();
    const float *xbase = x.data();
    const size_t uvStr = out.uvStride();
    StageTimer probe("xform.input",
                     4.0 * a * a * a * double(x.n()) * nc * nt);

    // Each (batch, channel) plane is independent; workers keep their
    // SoA scratch panel on the stack so the loop never allocates. The
    // spatial side is gathered scalar (strided, padded); the transform
    // itself runs vectorized across the panel's tiles.
    parallelFor(0, std::int64_t(x.n()) * nc, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        SoaPanel soa;
        for (std::int64_t bc = lo; bc < hi; ++bc) {
            const int b = int(bc / nc);
            const int c = int(bc % nc);
            const float *plane =
                xbase + (size_t(b) * nc + c) * size_t(h) * w;
            for (int t0 = 0; t0 < nt; t0 += mk::kTilePanel) {
                const int cnt = std::min(mk::kTilePanel, nt - t0);
                int tr[mk::kTilePanel], tc[mk::kTilePanel];
                for (int l = 0; l < cnt; ++l) {
                    const int t = t0 + l;
                    tr[l] = grid.tileRow(t / grid.tilesW);
                    tc[l] = grid.tileCol(t % grid.tilesW);
                }
                K.packTilePanel(soa.data(), plane, h, w, tr, tc, a, a,
                                cnt);
                K.xformToTiles(BT, a, a, B, a, a, soa.data(),
                               out.uvBase(c, b, t0), uvStr, cnt);
            }
        }
    });
}

WinoTiles
transformInput(const Tensor &x, const WinogradAlgo &algo)
{
    TileGrid grid(x.h(), x.w(), algo);
    WinoTiles out(algo.alpha, x.c(), x.n(), grid.tiles());
    transformInputInto(x, algo, out);
    return out;
}

void
transformInputAdjointInto(const WinoTiles &dX, const WinogradAlgo &algo,
                          Tensor &dx)
{
    WINOMC_SPAN("wino.xform.input_adjoint", "wino");
    const int h = dx.h();
    const int w = dx.w();
    TileGrid grid(h, w, algo);
    winomc_assert(grid.tiles() == dX.tiles(),
                  "tile count mismatch in input adjoint");
    winomc_assert(dx.n() == dX.batch() && dx.c() == dX.channels(),
                  "transformInputAdjointInto destination shape mismatch");
    dx.fill(0.0f); // overlap-add target

    const int a = algo.alpha;
    const int nc = dX.channels();
    const int nt = grid.tiles();
    const auto &K = mk::kernels();
    const double *B = algo.B.data();
    const double *BT = algo.BT.data();
    float *dxbase = dx.data();
    const size_t uvStr = dX.uvStride();
    StageTimer probe("xform.input_adjoint",
                     4.0 * a * a * a * double(dX.batch()) * nc * nt);

    // Partitioned over output (batch, channel) planes: overlap-add only
    // ever collides within one plane, and panel lanes scatter in
    // ascending tile order, so any thread count is race-free and
    // bitwise identical to serial.
    parallelFor(0, std::int64_t(dX.batch()) * nc, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        SoaPanel soa;
        for (std::int64_t bc = lo; bc < hi; ++bc) {
            const int b = int(bc / nc);
            const int c = int(bc % nc);
            float *plane = dxbase + (size_t(b) * nc + c) * size_t(h) * w;
            for (int t0 = 0; t0 < nt; t0 += mk::kTilePanel) {
                const int cnt = std::min(mk::kTilePanel, nt - t0);
                // Adjoint of X = BT x B is dx = B dX B^T.
                K.xformFromTiles(B, a, a, BT, a, a,
                                 dX.uvBase(c, b, t0), uvStr, soa.data(),
                                 cnt);
                int tr[mk::kTilePanel], tc[mk::kTilePanel];
                for (int l = 0; l < cnt; ++l) {
                    const int t = t0 + l;
                    tr[l] = grid.tileRow(t / grid.tilesW);
                    tc[l] = grid.tileCol(t % grid.tilesW);
                }
                K.unpackAddTilePanel(plane, h, w, tr, tc, a, a,
                                     soa.data(), cnt);
            }
        }
    });
}

Tensor
transformInputAdjoint(const WinoTiles &dX, const WinogradAlgo &algo,
                      int h, int w)
{
    Tensor dx(dX.batch(), dX.channels(), h, w);
    transformInputAdjointInto(dX, algo, dx);
    return dx;
}

void
transformWeightsInto(const Tensor &w, const WinogradAlgo &algo,
                     WinoWeights &out)
{
    WINOMC_SPAN("wino.xform.weights", "wino");
    winomc_assert(w.h() == algo.r && w.w() == algo.r,
                  "weight size does not match algorithm r");
    winomc_assert(out.alphaEdge() == algo.alpha &&
                  out.outChannels() == w.n() && out.inChannels() == w.c(),
                  "transformWeightsInto destination shape mismatch");
    const int a = algo.alpha;
    const int r = algo.r;
    const int ni = w.c();

    parallelFor(0, std::int64_t(w.n()) * ni, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        std::array<double, kMaxAlpha * kMaxAlpha> ker{};
        std::array<double, kMaxAlpha * kMaxAlpha> tw{};
        for (std::int64_t ji = lo; ji < hi; ++ji) {
            const int j = int(ji / ni);
            const int i = int(ji % ni);
            for (int y = 0; y < r; ++y)
                for (int x = 0; x < r; ++x)
                    ker[size_t(y * r + x)] = double(w.at(j, i, y, x));
            sandwich(algo.G, ker.data(), r, r, algo.GT, tw.data());
            for (int uv = 0; uv < a * a; ++uv)
                out.at(uv, j, i) = float(tw[size_t(uv)]);
        }
    });
}

WinoWeights
transformWeights(const Tensor &w, const WinogradAlgo &algo)
{
    WinoWeights out(algo.alpha, w.n(), w.c());
    transformWeightsInto(w, algo, out);
    return out;
}

void
transformWeightsAdjointInto(const WinoWeights &dW,
                            const WinogradAlgo &algo, Tensor &dw)
{
    WINOMC_SPAN("wino.xform.weights_adjoint", "wino");
    const int a = algo.alpha;
    const int r = algo.r;
    winomc_assert(dw.n() == dW.outChannels() &&
                  dw.c() == dW.inChannels() && dw.h() == r && dw.w() == r,
                  "transformWeightsAdjointInto destination shape mismatch");
    const int ni = dW.inChannels();

    parallelFor(0, std::int64_t(dW.outChannels()) * ni, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        std::array<double, kMaxAlpha * kMaxAlpha> tile{};
        std::array<double, kMaxAlpha * kMaxAlpha> sp{};
        for (std::int64_t ji = lo; ji < hi; ++ji) {
            const int j = int(ji / ni);
            const int i = int(ji % ni);
            for (int uv = 0; uv < a * a; ++uv)
                tile[size_t(uv)] = double(dW.at(uv, j, i));
            // Adjoint of W = G w G^T is dw = G^T dW G.
            sandwich(algo.GT, tile.data(), a, a, algo.G, sp.data());
            for (int y = 0; y < r; ++y)
                for (int x = 0; x < r; ++x)
                    dw.at(j, i, y, x) = float(sp[size_t(y * r + x)]);
        }
    });
}

Tensor
transformWeightsAdjoint(const WinoWeights &dW, const WinogradAlgo &algo)
{
    Tensor dw(dW.outChannels(), dW.inChannels(), algo.r, algo.r);
    transformWeightsAdjointInto(dW, algo, dw);
    return dw;
}

void
elementwiseForwardInto(const WinoTiles &X, const WinoWeights &W,
                       WinoTiles &Y)
{
    WINOMC_SPAN("wino.ew.fwd", "wino");
    winomc_assert(X.alphaEdge() == W.alphaEdge(),
                  "algo mismatch between tiles and weights");
    winomc_assert(X.channels() == W.inChannels(),
                  "channel mismatch: tiles ", X.channels(), " weights ",
                  W.inChannels());
    winomc_assert(Y.alphaEdge() == X.alphaEdge() &&
                  Y.channels() == W.outChannels() &&
                  Y.batch() == X.batch() && Y.tiles() == X.tiles(),
                  "elementwiseForwardInto destination shape mismatch");
    Y.fill(0.0f); // kernel accumulates into Y
    const int bt = X.batch() * X.tiles();
    const int nj = W.outChannels();
    const int ni = W.inChannels();
    const int jBlocks = (nj + kJBlock - 1) / kJBlock;
    const auto &K = mk::kernels();
    StageTimer probe("ew.fwd", 2.0 * X.uvCount() * double(nj) * ni * bt);

    // Y[uv] (J x BT) = W[uv] (J x I) * X[uv] (I x BT), parallel over
    // the uv x J-block output space; each task owns kJBlock Y rows.
    parallelFor(0, std::int64_t(X.uvCount()) * jBlocks, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t task = lo; task < hi; ++task) {
            const int uv = int(task / jBlocks);
            const int j0 = int(task % jBlocks) * kJBlock;
            const int jn = std::min(kJBlock, nj - j0);
            float *yrows[kJBlock];
            for (int jj = 0; jj < jn; ++jj)
                yrows[jj] = Y.row(uv, j0 + jj);
            for (int k0 = 0; k0 < bt; k0 += kKBlock) {
                const int kb = std::min(kKBlock, bt - k0);
                // Register block of kIUnroll input channels: every
                // Y load/store amortizes kIUnroll FMAs instead of one.
                for (int i0 = 0; i0 < ni; i0 += kIUnroll) {
                    const int ib = std::min(kIUnroll, ni - i0);
                    const float *xr[kIUnroll];
                    for (int ii = 0; ii < ib; ++ii)
                        xr[ii] = X.row(uv, i0 + ii) + k0;
                    for (int jj = 0; jj < jn; ++jj) {
                        float wv[kIUnroll];
                        bool any = false;
                        for (int ii = 0; ii < ib; ++ii) {
                            wv[ii] = W.at(uv, j0 + jj, i0 + ii);
                            any = any || wv[ii] != 0.0f;
                        }
                        if (!any)
                            continue; // zero weight block skips wholesale
                        K.panelAccum(yrows[jj] + k0, xr, wv, ib, kb);
                    }
                }
            }
        }
    });
}

WinoTiles
elementwiseForward(const WinoTiles &X, const WinoWeights &W)
{
    WinoTiles Y(X.alphaEdge(), W.outChannels(), X.batch(), X.tiles());
    elementwiseForwardInto(X, W, Y);
    return Y;
}

void
elementwiseBackwardDataInto(const WinoTiles &dY, const WinoWeights &W,
                            WinoTiles &dX)
{
    WINOMC_SPAN("wino.ew.bwd_data", "wino");
    winomc_assert(dY.channels() == W.outChannels(),
                  "channel mismatch in backward data");
    winomc_assert(dX.alphaEdge() == dY.alphaEdge() &&
                  dX.channels() == W.inChannels() &&
                  dX.batch() == dY.batch() && dX.tiles() == dY.tiles(),
                  "elementwiseBackwardDataInto destination shape mismatch");
    dX.fill(0.0f); // kernel accumulates into dX
    const int bt = dY.batch() * dY.tiles();
    const int nj = W.outChannels();
    const int ni = W.inChannels();
    const int iBlocks = (ni + kJBlock - 1) / kJBlock;
    const auto &K = mk::kernels();
    StageTimer probe("ew.bwd_data",
                     2.0 * dY.uvCount() * double(nj) * ni * bt);

    // dX[uv] (I x BT) = W[uv]^T (I x J) * dY[uv] (J x BT); same blocked
    // kernel as forward with the roles of I and J swapped. The weight
    // register block W.at(uv, j, i0..i0+3) is contiguous in memory.
    parallelFor(0, std::int64_t(dY.uvCount()) * iBlocks, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t task = lo; task < hi; ++task) {
            const int uv = int(task / iBlocks);
            const int i0 = int(task % iBlocks) * kJBlock;
            const int in = std::min(kJBlock, ni - i0);
            float *dxrows[kJBlock];
            for (int ii = 0; ii < in; ++ii)
                dxrows[ii] = dX.row(uv, i0 + ii);
            for (int k0 = 0; k0 < bt; k0 += kKBlock) {
                const int kb = std::min(kKBlock, bt - k0);
                // Register block of kIUnroll output channels (the
                // reduction axis here), mirroring the forward kernel.
                for (int j0 = 0; j0 < nj; j0 += kIUnroll) {
                    const int jb = std::min(kIUnroll, nj - j0);
                    const float *dyr[kIUnroll];
                    for (int jj = 0; jj < jb; ++jj)
                        dyr[jj] = dY.row(uv, j0 + jj) + k0;
                    for (int ii = 0; ii < in; ++ii) {
                        float wv[kIUnroll];
                        bool any = false;
                        for (int jj = 0; jj < jb; ++jj) {
                            wv[jj] = W.at(uv, j0 + jj, i0 + ii);
                            any = any || wv[jj] != 0.0f;
                        }
                        if (!any)
                            continue;
                        K.panelAccum(dxrows[ii] + k0, dyr, wv, jb, kb);
                    }
                }
            }
        }
    });
}

WinoTiles
elementwiseBackwardData(const WinoTiles &dY, const WinoWeights &W)
{
    WinoTiles dX(dY.alphaEdge(), W.inChannels(), dY.batch(), dY.tiles());
    elementwiseBackwardDataInto(dY, W, dX);
    return dX;
}

void
elementwiseGradWeightsInto(const WinoTiles &dY, const WinoTiles &X,
                           WinoWeights &dW)
{
    WINOMC_SPAN("wino.ew.grad_weights", "wino");
    winomc_assert(dY.batch() == X.batch() && dY.tiles() == X.tiles() &&
                  dY.alphaEdge() == X.alphaEdge(),
                  "shape mismatch in weight gradient");
    winomc_assert(dW.alphaEdge() == X.alphaEdge() &&
                  dW.outChannels() == dY.channels() &&
                  dW.inChannels() == X.channels(),
                  "elementwiseGradWeightsInto destination shape mismatch");
    const int bt = X.batch() * X.tiles();
    const int nj = dY.channels();
    const int ni = X.channels();
    const int jBlocks = (nj + kJBlock - 1) / kJBlock;
    const auto &K = mk::kernels();
    StageTimer probe("ew.grad_weights",
                     2.0 * X.uvCount() * double(nj) * ni * bt);

    // dW[uv] (J x I) = dY[uv] (J x BT) * X[uv]^T (BT x I). Partitioned
    // over the *output* (uv, J-block) space: every dW element is owned
    // by exactly one task and its reduction runs over k in ascending
    // order, so results are bitwise identical for any thread count.
    parallelFor(0, std::int64_t(X.uvCount()) * jBlocks, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t task = lo; task < hi; ++task) {
            const int uv = int(task / jBlocks);
            const int j0 = int(task % jBlocks) * kJBlock;
            const int jn = std::min(kJBlock, nj - j0);
            double acc[kJBlock][kIBlock];
            for (int i0 = 0; i0 < ni; i0 += kIBlock) {
                const int in = std::min(kIBlock, ni - i0);
                for (int jj = 0; jj < jn; ++jj)
                    for (int ii = 0; ii < in; ++ii)
                        acc[jj][ii] = 0.0;
                for (int k0 = 0; k0 < bt; k0 += kKBlock) {
                    const int kb = std::min(kKBlock, bt - k0);
                    for (int ii = 0; ii < in; ++ii) {
                        const float *x = X.row(uv, i0 + ii) + k0;
                        for (int jj = 0; jj < jn; ++jj) {
                            const float *dy = dY.row(uv, j0 + jj) + k0;
                            acc[jj][ii] += K.dotDouble(dy, x, kb);
                        }
                    }
                }
                for (int jj = 0; jj < jn; ++jj)
                    for (int ii = 0; ii < in; ++ii)
                        dW.at(uv, j0 + jj, i0 + ii) =
                            float(acc[jj][ii]);
            }
        }
    });
}

WinoWeights
elementwiseGradWeights(const WinoTiles &dY, const WinoTiles &X)
{
    WinoWeights dW(X.alphaEdge(), dY.channels(), X.channels());
    elementwiseGradWeightsInto(dY, X, dW);
    return dW;
}

void
inverseTransformInto(const WinoTiles &Y, const WinogradAlgo &algo,
                     Tensor &y)
{
    WINOMC_SPAN("wino.xform.inverse", "wino");
    const int h = y.h();
    const int w = y.w();
    TileGrid grid(h, w, algo);
    winomc_assert(grid.tiles() == Y.tiles(),
                  "tile count mismatch in inverse transform");
    winomc_assert(y.n() == Y.batch() && y.c() == Y.channels(),
                  "inverseTransformInto destination shape mismatch");
    const int a = algo.alpha;
    const int m = algo.m;
    const int nc = Y.channels();
    const int nt = grid.tiles();
    const auto &K = mk::kernels();
    const double *AT = algo.AT.data();
    const double *A = algo.A.data();
    float *ybase = y.data();
    const size_t uvStr = Y.uvStride();
    StageTimer probe("xform.inverse",
                     2.0 * m * a * (a + m) * double(Y.batch()) * nc * nt);

    parallelFor(0, std::int64_t(Y.batch()) * nc, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        SoaPanel soa;
        for (std::int64_t bc = lo; bc < hi; ++bc) {
            const int b = int(bc / nc);
            const int c = int(bc % nc);
            float *plane = ybase + (size_t(b) * nc + c) * size_t(h) * w;
            for (int t0 = 0; t0 < nt; t0 += mk::kTilePanel) {
                const int cnt = std::min(mk::kTilePanel, nt - t0);
                K.xformFromTiles(AT, m, a, A, a, m, Y.uvBase(c, b, t0),
                                 uvStr, soa.data(), cnt);
                int tr[mk::kTilePanel], tc[mk::kTilePanel];
                for (int l = 0; l < cnt; ++l) {
                    const int t = t0 + l;
                    tr[l] = (t / grid.tilesW) * m;
                    tc[l] = (t % grid.tilesW) * m;
                }
                K.unpackTilePanel(plane, h, w, tr, tc, m, m, soa.data(),
                                  cnt);
            }
        }
    });
}

Tensor
inverseTransform(const WinoTiles &Y, const WinogradAlgo &algo, int h,
                 int w)
{
    Tensor y(Y.batch(), Y.channels(), h, w);
    inverseTransformInto(Y, algo, y);
    return y;
}

void
inverseTransformAdjointInto(const Tensor &dy, const WinogradAlgo &algo,
                            WinoTiles &dY)
{
    WINOMC_SPAN("wino.xform.inverse_adjoint", "wino");
    TileGrid grid(dy.h(), dy.w(), algo);
    winomc_assert(dY.alphaEdge() == algo.alpha &&
                  dY.channels() == dy.c() && dY.batch() == dy.n() &&
                  dY.tiles() == grid.tiles(),
                  "inverseTransformAdjointInto destination shape mismatch");
    const int a = algo.alpha;
    const int m = algo.m;
    const int nc = dy.c();
    const int h = dy.h();
    const int w = dy.w();
    const int nt = grid.tiles();
    const auto &K = mk::kernels();
    const double *A = algo.A.data();
    const double *AT = algo.AT.data();
    const float *dybase = dy.data();
    const size_t uvStr = dY.uvStride();
    StageTimer probe("xform.inverse_adjoint",
                     2.0 * m * a * (a + m) * double(dy.n()) * nc * nt);

    parallelFor(0, std::int64_t(dy.n()) * nc, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        SoaPanel soa;
        for (std::int64_t bc = lo; bc < hi; ++bc) {
            const int b = int(bc / nc);
            const int c = int(bc % nc);
            const float *plane =
                dybase + (size_t(b) * nc + c) * size_t(h) * w;
            for (int t0 = 0; t0 < nt; t0 += mk::kTilePanel) {
                const int cnt = std::min(mk::kTilePanel, nt - t0);
                int tr[mk::kTilePanel], tc[mk::kTilePanel];
                for (int l = 0; l < cnt; ++l) {
                    const int t = t0 + l;
                    tr[l] = (t / grid.tilesW) * m;
                    tc[l] = (t % grid.tilesW) * m;
                }
                K.packTilePanel(soa.data(), plane, h, w, tr, tc, m, m,
                                cnt);
                // Adjoint of y = AT Y A is dY = A dy A^T.
                K.xformToTiles(A, a, m, AT, m, a, soa.data(),
                               dY.uvBase(c, b, t0), uvStr, cnt);
            }
        }
    });
}

WinoTiles
inverseTransformAdjoint(const Tensor &dy, const WinogradAlgo &algo)
{
    TileGrid grid(dy.h(), dy.w(), algo);
    WinoTiles dY(algo.alpha, dy.c(), dy.n(), grid.tiles());
    inverseTransformAdjointInto(dy, algo, dY);
    return dY;
}

void
transformInputStrip(const Tensor &x, const WinogradAlgo &algo,
                    const TileGrid &grid, int b, int t0, int tcnt,
                    WinoTiles &Xs)
{
    winomc_assert(algo.alpha <= kMaxAlpha, "alpha too large");
    winomc_assert(Xs.alphaEdge() == algo.alpha && Xs.batch() == 1 &&
                  Xs.channels() == x.c() && Xs.tiles() >= tcnt,
                  "transformInputStrip scratch shape mismatch");
    const int a = algo.alpha;
    const int nc = x.c();
    const int h = x.h();
    const int w = x.w();
    const auto &K = mk::kernels();
    const double *BT = algo.BT.data();
    const double *B = algo.B.data();
    const size_t uvStr = Xs.uvStride();
    SoaPanel soa;
    for (int c = 0; c < nc; ++c) {
        const float *plane =
            x.data() + (size_t(b) * nc + c) * size_t(h) * w;
        for (int p0 = 0; p0 < tcnt; p0 += mk::kTilePanel) {
            const int cnt = std::min(mk::kTilePanel, tcnt - p0);
            int tr[mk::kTilePanel], tc[mk::kTilePanel];
            for (int l = 0; l < cnt; ++l) {
                const int t = t0 + p0 + l;
                tr[l] = grid.tileRow(t / grid.tilesW);
                tc[l] = grid.tileCol(t % grid.tilesW);
            }
            K.packTilePanel(soa.data(), plane, h, w, tr, tc, a, a, cnt);
            K.xformToTiles(BT, a, a, B, a, a, soa.data(),
                           Xs.uvBase(c, 0, p0), uvStr, cnt);
        }
    }
}

void
elementwiseForwardStrip(const WinoTiles &Xs, const WinoWeights &W,
                        int tcnt, WinoTiles &Ys)
{
    winomc_assert(Xs.channels() == W.inChannels() &&
                  Ys.channels() == W.outChannels() &&
                  Xs.tiles() >= tcnt && Ys.tiles() >= tcnt,
                  "elementwiseForwardStrip shape mismatch");
    const int a2 = Xs.uvCount();
    const int nj = W.outChannels();
    const int ni = W.inChannels();
    const auto &K = mk::kernels();

    // Same register blocking as elementwiseForwardInto with the
    // streamed axis cut down to the strip; per-element arithmetic is
    // unchanged, so the result is bitwise identical to the staged path.
    for (int uv = 0; uv < a2; ++uv) {
        for (int j0 = 0; j0 < nj; j0 += kJBlock) {
            const int jn = std::min(kJBlock, nj - j0);
            float *yrows[kJBlock];
            for (int jj = 0; jj < jn; ++jj) {
                yrows[jj] = Ys.row(uv, j0 + jj);
                std::fill(yrows[jj], yrows[jj] + tcnt, 0.0f);
            }
            for (int k0 = 0; k0 < tcnt; k0 += kKBlock) {
                const int kb = std::min(kKBlock, tcnt - k0);
                for (int i0 = 0; i0 < ni; i0 += kIUnroll) {
                    const int ib = std::min(kIUnroll, ni - i0);
                    const float *xr[kIUnroll];
                    for (int ii = 0; ii < ib; ++ii)
                        xr[ii] = Xs.row(uv, i0 + ii) + k0;
                    for (int jj = 0; jj < jn; ++jj) {
                        float wv[kIUnroll];
                        bool any = false;
                        for (int ii = 0; ii < ib; ++ii) {
                            wv[ii] = W.at(uv, j0 + jj, i0 + ii);
                            any = any || wv[ii] != 0.0f;
                        }
                        if (!any)
                            continue;
                        K.panelAccum(yrows[jj] + k0, xr, wv, ib, kb);
                    }
                }
            }
        }
    }
}

void
inverseTransformStrip(const WinoTiles &Ys, const WinogradAlgo &algo,
                      const TileGrid &grid, int b, int t0, int tcnt,
                      Tensor &y)
{
    winomc_assert(Ys.alphaEdge() == algo.alpha && Ys.batch() == 1 &&
                  Ys.channels() == y.c() && Ys.tiles() >= tcnt,
                  "inverseTransformStrip scratch shape mismatch");
    const int a = algo.alpha;
    const int m = algo.m;
    const int nc = y.c();
    const int h = y.h();
    const int w = y.w();
    const auto &K = mk::kernels();
    const double *AT = algo.AT.data();
    const double *A = algo.A.data();
    const size_t uvStr = Ys.uvStride();
    SoaPanel soa;
    for (int c = 0; c < nc; ++c) {
        float *plane = y.data() + (size_t(b) * nc + c) * size_t(h) * w;
        for (int p0 = 0; p0 < tcnt; p0 += mk::kTilePanel) {
            const int cnt = std::min(mk::kTilePanel, tcnt - p0);
            K.xformFromTiles(AT, m, a, A, a, m, Ys.uvBase(c, 0, p0),
                             uvStr, soa.data(), cnt);
            int tr[mk::kTilePanel], tc[mk::kTilePanel];
            for (int l = 0; l < cnt; ++l) {
                const int t = t0 + p0 + l;
                tr[l] = (t / grid.tilesW) * m;
                tc[l] = (t % grid.tilesW) * m;
            }
            K.unpackTilePanel(plane, h, w, tr, tc, m, m, soa.data(),
                              cnt);
        }
    }
}

void
inverseTransformAdjointStrip(const Tensor &dy, const WinogradAlgo &algo,
                             const TileGrid &grid, int b, int t0,
                             int tcnt, WinoTiles &dYs)
{
    winomc_assert(dYs.alphaEdge() == algo.alpha && dYs.batch() == 1 &&
                  dYs.channels() == dy.c() && dYs.tiles() >= tcnt,
                  "inverseTransformAdjointStrip scratch shape mismatch");
    const int a = algo.alpha;
    const int m = algo.m;
    const int nc = dy.c();
    const int h = dy.h();
    const int w = dy.w();
    const auto &K = mk::kernels();
    const double *A = algo.A.data();
    const double *AT = algo.AT.data();
    const size_t uvStr = dYs.uvStride();
    SoaPanel soa;
    for (int c = 0; c < nc; ++c) {
        const float *plane =
            dy.data() + (size_t(b) * nc + c) * size_t(h) * w;
        for (int p0 = 0; p0 < tcnt; p0 += mk::kTilePanel) {
            const int cnt = std::min(mk::kTilePanel, tcnt - p0);
            int tr[mk::kTilePanel], tc[mk::kTilePanel];
            for (int l = 0; l < cnt; ++l) {
                const int t = t0 + p0 + l;
                tr[l] = (t / grid.tilesW) * m;
                tc[l] = (t % grid.tilesW) * m;
            }
            K.packTilePanel(soa.data(), plane, h, w, tr, tc, m, m, cnt);
            // Adjoint of y = AT Y A is dY = A dy A^T.
            K.xformToTiles(A, a, m, AT, m, a, soa.data(),
                           dYs.uvBase(c, 0, p0), uvStr, cnt);
        }
    }
}

void
elementwiseBackwardDataStrip(const WinoTiles &dYs, const WinoWeights &W,
                             int tcnt, WinoTiles &dXs)
{
    winomc_assert(dYs.channels() == W.outChannels() &&
                  dXs.channels() == W.inChannels() &&
                  dYs.tiles() >= tcnt && dXs.tiles() >= tcnt,
                  "elementwiseBackwardDataStrip shape mismatch");
    const int a2 = dYs.uvCount();
    const int nj = W.outChannels();
    const int ni = W.inChannels();
    const auto &K = mk::kernels();

    for (int uv = 0; uv < a2; ++uv) {
        for (int i0 = 0; i0 < ni; i0 += kJBlock) {
            const int in = std::min(kJBlock, ni - i0);
            float *dxrows[kJBlock];
            for (int ii = 0; ii < in; ++ii) {
                dxrows[ii] = dXs.row(uv, i0 + ii);
                std::fill(dxrows[ii], dxrows[ii] + tcnt, 0.0f);
            }
            for (int k0 = 0; k0 < tcnt; k0 += kKBlock) {
                const int kb = std::min(kKBlock, tcnt - k0);
                for (int j0 = 0; j0 < nj; j0 += kIUnroll) {
                    const int jb = std::min(kIUnroll, nj - j0);
                    const float *dyr[kIUnroll];
                    for (int jj = 0; jj < jb; ++jj)
                        dyr[jj] = dYs.row(uv, j0 + jj) + k0;
                    for (int ii = 0; ii < in; ++ii) {
                        float wv[kIUnroll];
                        bool any = false;
                        for (int jj = 0; jj < jb; ++jj) {
                            wv[jj] = W.at(uv, j0 + jj, i0 + ii);
                            any = any || wv[jj] != 0.0f;
                        }
                        if (!any)
                            continue;
                        K.panelAccum(dxrows[ii] + k0, dyr, wv, jb, kb);
                    }
                }
            }
        }
    }
}

void
transformInputAdjointStripAdd(const WinoTiles &dXs,
                              const WinogradAlgo &algo,
                              const TileGrid &grid, int b, int t0,
                              int tcnt, Tensor &dx)
{
    winomc_assert(dXs.alphaEdge() == algo.alpha && dXs.batch() == 1 &&
                  dXs.channels() == dx.c() && dXs.tiles() >= tcnt,
                  "transformInputAdjointStripAdd scratch shape mismatch");
    const int a = algo.alpha;
    const int nc = dx.c();
    const int h = dx.h();
    const int w = dx.w();
    const auto &K = mk::kernels();
    const double *B = algo.B.data();
    const double *BT = algo.BT.data();
    const size_t uvStr = dXs.uvStride();
    SoaPanel soa;
    for (int c = 0; c < nc; ++c) {
        float *plane = dx.data() + (size_t(b) * nc + c) * size_t(h) * w;
        for (int p0 = 0; p0 < tcnt; p0 += mk::kTilePanel) {
            const int cnt = std::min(mk::kTilePanel, tcnt - p0);
            // Adjoint of X = BT x B is dx = B dX B^T.
            K.xformFromTiles(B, a, a, BT, a, a, dXs.uvBase(c, 0, p0),
                             uvStr, soa.data(), cnt);
            int tr[mk::kTilePanel], tc[mk::kTilePanel];
            for (int l = 0; l < cnt; ++l) {
                const int t = t0 + p0 + l;
                tr[l] = grid.tileRow(t / grid.tilesW);
                tc[l] = grid.tileCol(t % grid.tilesW);
            }
            K.unpackAddTilePanel(plane, h, w, tr, tc, a, a, soa.data(),
                                 cnt);
        }
    }
}

namespace {

/**
 * Task-local tallies behind the quant.* counters: accumulated in
 * registers inside the parallel loops, published once per task so the
 * metrics registry mutex never sits on the hot path.
 */
struct SparseTally
{
    double rowsTotal = 0.0;
    double rowsSkipped = 0.0;
    double flopsSkipped = 0.0;

    void
    publish() const
    {
        if (!metrics::enabled() || rowsTotal == 0.0)
            return;
        metrics::counterAdd("quant.ew.rows_total", rowsTotal);
        metrics::counterAdd("quant.ew.rows_skipped", rowsSkipped);
        metrics::counterAdd("quant.ew.flops_skipped", flopsSkipped);
    }
};

/** Mask-build tallies (quant.mask.*), same per-task discipline. */
struct MaskTally
{
    double panelsTotal = 0.0;
    double panelsZero = 0.0;

    void
    add(std::uint64_t zeroBits, int uvCount)
    {
        panelsTotal += uvCount;
        panelsZero += __builtin_popcountll(zeroBits);
    }
    void
    publish() const
    {
        if (!metrics::enabled() || panelsTotal == 0.0)
            return;
        metrics::counterAdd("quant.mask.panels_total", panelsTotal);
        metrics::counterAdd("quant.mask.panels_zero", panelsZero);
    }
};

} // namespace

void
transformInputMaskInto(const Tensor &x, const WinogradAlgo &algo,
                       WinoTiles &out, ActMask &mask)
{
    WINOMC_SPAN("wino.xform.input", "wino");
    winomc_assert(algo.alpha <= kMaxAlpha, "alpha too large");
    TileGrid grid(x.h(), x.w(), algo);
    winomc_assert(out.alphaEdge() == algo.alpha &&
                  out.channels() == x.c() && out.batch() == x.n() &&
                  out.tiles() == grid.tiles(),
                  "transformInputMaskInto destination shape mismatch");

    const int a = algo.alpha;
    const int nc = x.c();
    const int h = x.h();
    const int w = x.w();
    const int nt = grid.tiles();
    const auto &K = mk::kernels();
    const double *BT = algo.BT.data();
    const double *B = algo.B.data();
    const float *xbase = x.data();
    const size_t uvStr = out.uvStride();
    StageTimer probe("xform.input",
                     4.0 * a * a * a * double(x.n()) * nc * nt);

    // Identical gather/transform arithmetic to transformInputInto; the
    // only addition is the per-panel zero scan of the just-written
    // (L1-hot) SoA output into `mask`. Each (b, c) plane region has
    // exactly one writer, so the plane-local clear + OR is race-free.
    parallelFor(0, std::int64_t(x.n()) * nc, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        SoaPanel soa;
        MaskTally tally;
        for (std::int64_t bc = lo; bc < hi; ++bc) {
            const int b = int(bc / nc);
            const int c = int(bc % nc);
            const float *plane =
                xbase + (size_t(b) * nc + c) * size_t(h) * w;
            std::uint64_t *mreg = mask.plane(c, b);
            std::fill(mreg, mreg + mask.wordsPerPlane(), 0);
            for (int t0 = 0; t0 < nt; t0 += mk::kTilePanel) {
                const int cnt = std::min(mk::kTilePanel, nt - t0);
                int tr[mk::kTilePanel], tc[mk::kTilePanel];
                for (int l = 0; l < cnt; ++l) {
                    const int t = t0 + l;
                    tr[l] = grid.tileRow(t / grid.tilesW);
                    tc[l] = grid.tileCol(t % grid.tilesW);
                }
                K.packTilePanel(soa.data(), plane, h, w, tr, tc, a, a,
                                cnt);
                K.xformToTiles(BT, a, a, B, a, a, soa.data(),
                               out.uvBase(c, b, t0), uvStr, cnt);
                const std::uint64_t zm = K.panelZeroMask(
                    out.uvBase(c, b, t0), uvStr, a * a, cnt);
                mask.orPanelBits(c, b, t0 / mk::kTilePanel, zm);
                tally.add(zm, a * a);
            }
        }
        tally.publish();
    });
}

void
transformInputHalfInto(const Tensor &x, const WinogradAlgo &algo,
                       HalfTiles &out, int halfKind, ActMask *mask)
{
    WINOMC_SPAN("wino.xform.input", "wino");
    winomc_assert(algo.alpha <= kMaxAlpha, "alpha too large");
    TileGrid grid(x.h(), x.w(), algo);
    winomc_assert(out.alphaEdge() == algo.alpha &&
                  out.channels() == x.c() && out.batch() == x.n() &&
                  out.tiles() == grid.tiles(),
                  "transformInputHalfInto destination shape mismatch");

    const int a = algo.alpha;
    const int nc = x.c();
    const int h = x.h();
    const int w = x.w();
    const int nt = grid.tiles();
    const auto &K = mk::kernels();
    const double *BT = algo.BT.data();
    const double *B = algo.B.data();
    const float *xbase = x.data();
    const size_t uvStr = out.uvStride();
    StageTimer probe("xform.input",
                     4.0 * a * a * a * double(x.n()) * nc * nt);

    parallelFor(0, std::int64_t(x.n()) * nc, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        SoaPanel soa;
        MaskTally tally;
        for (std::int64_t bc = lo; bc < hi; ++bc) {
            const int b = int(bc / nc);
            const int c = int(bc % nc);
            const float *plane =
                xbase + (size_t(b) * nc + c) * size_t(h) * w;
            if (mask) {
                std::uint64_t *mreg = mask->plane(c, b);
                std::fill(mreg, mreg + mask->wordsPerPlane(), 0);
            }
            for (int t0 = 0; t0 < nt; t0 += mk::kTilePanel) {
                const int cnt = std::min(mk::kTilePanel, nt - t0);
                int tr[mk::kTilePanel], tc[mk::kTilePanel];
                for (int l = 0; l < cnt; ++l) {
                    const int t = t0 + l;
                    tr[l] = grid.tileRow(t / grid.tilesW);
                    tc[l] = grid.tileCol(t % grid.tilesW);
                }
                K.packTilePanel(soa.data(), plane, h, w, tr, tc, a, a,
                                cnt);
                K.xformToTilesHalf(BT, a, a, B, a, a, soa.data(),
                                   out.uvBase(c, b, t0), uvStr, cnt,
                                   halfKind);
                if (mask) {
                    const std::uint64_t zm = K.panelZeroMaskHalf(
                        out.uvBase(c, b, t0), uvStr, a * a, cnt);
                    mask->orPanelBits(c, b, t0 / mk::kTilePanel, zm);
                    tally.add(zm, a * a);
                }
            }
        }
        tally.publish();
    });
}

void
elementwiseForwardSparseInto(const WinoTiles &X, const WinoWeights &W,
                             WinoTiles &Y, const ActMask &mask)
{
    WINOMC_SPAN("wino.ew.fwd", "wino");
    winomc_assert(X.alphaEdge() == W.alphaEdge(),
                  "algo mismatch between tiles and weights");
    winomc_assert(X.channels() == W.inChannels(),
                  "channel mismatch: tiles ", X.channels(), " weights ",
                  W.inChannels());
    winomc_assert(Y.alphaEdge() == X.alphaEdge() &&
                  Y.channels() == W.outChannels() &&
                  Y.batch() == X.batch() && Y.tiles() == X.tiles(),
                  "elementwiseForwardSparseInto destination shape mismatch");
    Y.fill(0.0f); // kernel accumulates into Y
    const int bt = X.batch() * X.tiles();
    const int nj = W.outChannels();
    const int ni = W.inChannels();
    const int jBlocks = (nj + kJBlock - 1) / kJBlock;
    const auto &K = mk::kernels();
    StageTimer probe("ew.fwd", 2.0 * X.uvCount() * double(nj) * ni * bt);

    // Resolve the mask once into a per-(uv, row, k-block) byte table.
    // Every J-block task over one uv needs the same row liveness, so
    // querying the bit-packed mask from the GEMM inner loop would
    // repeat the panel walk jBlocks times per row — measured at this
    // granularity the walk itself, not the skipped FLOPs, dominates.
    const int kBlocks = (bt + kKBlock - 1) / kKBlock;
    std::vector<std::uint8_t> rowLive(std::size_t(X.uvCount()) * ni *
                                      kBlocks);
    parallelFor(0, X.uvCount(), 1,
                [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t uv = lo; uv < hi; ++uv)
            for (int kb = 0; kb < kBlocks; ++kb) {
                const int k0 = kb * kKBlock;
                const int kn = std::min(kKBlock, bt - k0);
                // Unit stride in i: the compaction scan walks this.
                std::uint8_t *dst = rowLive.data() +
                                    (uv * kBlocks + kb) * ni;
                for (int i = 0; i < ni; ++i)
                    dst[i] = !mask.rowRangeZero(int(uv), i, k0, kn);
            }
    });

    // Same task partition as elementwiseForwardInto, but the i-loop is
    // fully compacted per output row: every surviving (weight nonzero
    // AND activation range live) input row of the whole column goes
    // into one panelAccumGrouped call, so each y panel is read and
    // written once instead of ni/kIUnroll times. The group descriptor
    // preserves the blocked kernel's per-register-block expression
    // shapes, keeping the result bitwise identical to dense fp32. The
    // append is branchless (slot always written, cursor advances only
    // for survivors) — at high sparsity the scan itself is the cost,
    // and a skipped-row branch mispredicts by construction.
    const std::size_t xrs = X.uvStride() / std::size_t(X.channels());
    parallelFor(0, std::int64_t(X.uvCount()) * jBlocks, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        SparseTally tally;
        std::vector<const float *> xc(static_cast<std::size_t>(ni));
        std::vector<float> wc(static_cast<std::size_t>(ni));
        std::vector<std::uint8_t> grp(
            static_cast<std::size_t>((ni + kIUnroll - 1) / kIUnroll));
        for (std::int64_t task = lo; task < hi; ++task) {
            const int uv = int(task / jBlocks);
            const int j0 = int(task % jBlocks) * kJBlock;
            const int jn = std::min(kJBlock, nj - j0);
            const float *xuv = X.row(uv, 0);
            for (int k0 = 0; k0 < bt; k0 += kKBlock) {
                const int kb = std::min(kKBlock, bt - k0);
                const std::uint8_t *live =
                    rowLive.data() +
                    (std::size_t(uv) * kBlocks + k0 / kKBlock) * ni;
                for (int jj = 0; jj < jn; ++jj) {
                    const float *wrow =
                        W.raw() +
                        (std::size_t(uv) * nj + j0 + jj) * ni;
                    int nv = 0, ng = 0, tailOrig = kIUnroll;
                    for (int i0 = 0; i0 < ni; i0 += kIUnroll) {
                        const int ib = std::min(kIUnroll, ni - i0);
                        const int base = nv;
                        for (int ii = 0; ii < ib; ++ii) {
                            const int i = i0 + ii;
                            const float wval = wrow[i];
                            wc[std::size_t(nv)] = wval;
                            xc[std::size_t(nv)] =
                                xuv + std::size_t(i) * xrs + k0;
                            nv += int(wval != 0.0f) & int(live[i]);
                        }
                        if (nv != base) {
                            grp[std::size_t(ng++)] =
                                std::uint8_t(nv - base);
                            tailOrig = ib;
                        }
                    }
                    tally.rowsTotal += ni;
                    tally.rowsSkipped += ni - nv;
                    tally.flopsSkipped += 2.0 * (ni - nv) * kb;
                    if (nv == 0)
                        continue;
                    K.panelAccumGrouped(Y.row(uv, j0 + jj) + k0,
                                        xc.data(), wc.data(), nv, kb,
                                        grp.data(), ng, tailOrig);
                }
            }
        }
        tally.publish();
    });
}

void
elementwiseForwardHalfInto(const HalfTiles &X, const WinoWeights &W,
                           WinoTiles &Y, int halfKind,
                           const ActMask *mask)
{
    WINOMC_SPAN("wino.ew.fwd", "wino");
    winomc_assert(X.alphaEdge() == W.alphaEdge(),
                  "algo mismatch between tiles and weights");
    winomc_assert(X.channels() == W.inChannels(),
                  "channel mismatch: tiles ", X.channels(), " weights ",
                  W.inChannels());
    winomc_assert(Y.alphaEdge() == X.alphaEdge() &&
                  Y.channels() == W.outChannels() &&
                  Y.batch() == X.batch() && Y.tiles() == X.tiles(),
                  "elementwiseForwardHalfInto destination shape mismatch");
    Y.fill(0.0f);
    const int bt = X.batch() * X.tiles();
    const int nj = W.outChannels();
    const int ni = W.inChannels();
    const int jBlocks = (nj + kJBlock - 1) / kJBlock;
    const auto &K = mk::kernels();
    StageTimer probe("ew.fwd", 2.0 * X.uvCount() * double(nj) * ni * bt);

    // Mask resolved up front, as in elementwiseForwardSparseInto: one
    // panel walk per (uv, row, k-block) instead of one per J-block.
    const int kBlocks = (bt + kKBlock - 1) / kKBlock;
    std::vector<std::uint8_t> rowLive;
    if (mask) {
        rowLive.resize(std::size_t(X.uvCount()) * ni * kBlocks);
        parallelFor(0, X.uvCount(), 1,
                    [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t uv = lo; uv < hi; ++uv)
                for (int kb = 0; kb < kBlocks; ++kb) {
                    const int k0 = kb * kKBlock;
                    const int kn = std::min(kKBlock, bt - k0);
                    std::uint8_t *dst = rowLive.data() +
                                        (uv * kBlocks + kb) * ni;
                    for (int i = 0; i < ni; ++i)
                        dst[i] =
                            !mask->rowRangeZero(int(uv), i, k0, kn);
                }
        });
    } else {
        // No activation mask: every row is live; keeps the scan below
        // branch-free either way.
        rowLive.assign(std::size_t(X.uvCount()) * ni * kBlocks, 1);
    }

    // The half kernel accumulates per-row sequentially at every ISA
    // level, so the whole input-channel column can be compacted into
    // ONE panelAccumHalf call per y panel — same FMA chain as the
    // blocked calls, one y pass instead of ni/kIUnroll — without an
    // expression-shape switch. Branchless append as in the fp32 sparse
    // kernel.
    const std::size_t xrs = std::size_t(X.batch()) * X.tiles();
    parallelFor(0, std::int64_t(X.uvCount()) * jBlocks, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        SparseTally tally;
        std::vector<const std::uint16_t *> xc(static_cast<std::size_t>(ni));
        std::vector<float> wc(static_cast<std::size_t>(ni));
        for (std::int64_t task = lo; task < hi; ++task) {
            const int uv = int(task / jBlocks);
            const int j0 = int(task % jBlocks) * kJBlock;
            const int jn = std::min(kJBlock, nj - j0);
            const std::uint16_t *xuv = X.row(uv, 0);
            for (int k0 = 0; k0 < bt; k0 += kKBlock) {
                const int kb = std::min(kKBlock, bt - k0);
                const std::uint8_t *live =
                    rowLive.data() +
                    (std::size_t(uv) * kBlocks + k0 / kKBlock) * ni;
                for (int jj = 0; jj < jn; ++jj) {
                    const float *wrow =
                        W.raw() +
                        (std::size_t(uv) * nj + j0 + jj) * ni;
                    int nv = 0;
                    for (int i = 0; i < ni; ++i) {
                        const float wval = wrow[i];
                        wc[std::size_t(nv)] = wval;
                        xc[std::size_t(nv)] =
                            xuv + std::size_t(i) * xrs + k0;
                        nv += int(wval != 0.0f) & int(live[i]);
                    }
                    if (mask) {
                        tally.rowsTotal += ni;
                        tally.rowsSkipped += ni - nv;
                        tally.flopsSkipped += 2.0 * (ni - nv) * kb;
                    }
                    if (nv == 0)
                        continue;
                    K.panelAccumHalf(Y.row(uv, j0 + jj) + k0,
                                     xc.data(), wc.data(), nv, kb,
                                     halfKind);
                }
            }
        }
        tally.publish();
    });
}

void
transformInputStripMask(const Tensor &x, const WinogradAlgo &algo,
                        const TileGrid &grid, int b, int t0, int tcnt,
                        WinoTiles &Xs, ActMask &mask)
{
    winomc_assert(algo.alpha <= kMaxAlpha, "alpha too large");
    winomc_assert(Xs.alphaEdge() == algo.alpha && Xs.batch() == 1 &&
                  Xs.channels() == x.c() && Xs.tiles() >= tcnt,
                  "transformInputStripMask scratch shape mismatch");
    const int a = algo.alpha;
    const int nc = x.c();
    const int h = x.h();
    const int w = x.w();
    const auto &K = mk::kernels();
    const double *BT = algo.BT.data();
    const double *B = algo.B.data();
    const size_t uvStr = Xs.uvStride();
    SoaPanel soa;
    for (int c = 0; c < nc; ++c) {
        const float *plane =
            x.data() + (size_t(b) * nc + c) * size_t(h) * w;
        std::uint64_t *mreg = mask.plane(c, 0);
        std::fill(mreg, mreg + mask.wordsPerPlane(), 0);
        for (int p0 = 0; p0 < tcnt; p0 += mk::kTilePanel) {
            const int cnt = std::min(mk::kTilePanel, tcnt - p0);
            int tr[mk::kTilePanel], tc[mk::kTilePanel];
            for (int l = 0; l < cnt; ++l) {
                const int t = t0 + p0 + l;
                tr[l] = grid.tileRow(t / grid.tilesW);
                tc[l] = grid.tileCol(t % grid.tilesW);
            }
            K.packTilePanel(soa.data(), plane, h, w, tr, tc, a, a, cnt);
            K.xformToTiles(BT, a, a, B, a, a, soa.data(),
                           Xs.uvBase(c, 0, p0), uvStr, cnt);
            mask.orPanelBits(c, 0, p0 / mk::kTilePanel,
                             K.panelZeroMask(Xs.uvBase(c, 0, p0), uvStr,
                                             a * a, cnt));
        }
    }
}

void
transformInputStripHalf(const Tensor &x, const WinogradAlgo &algo,
                        const TileGrid &grid, int b, int t0, int tcnt,
                        HalfTiles &Xs, int halfKind, ActMask *mask)
{
    winomc_assert(algo.alpha <= kMaxAlpha, "alpha too large");
    winomc_assert(Xs.alphaEdge() == algo.alpha && Xs.batch() == 1 &&
                  Xs.channels() == x.c() && Xs.tiles() >= tcnt,
                  "transformInputStripHalf scratch shape mismatch");
    const int a = algo.alpha;
    const int nc = x.c();
    const int h = x.h();
    const int w = x.w();
    const auto &K = mk::kernels();
    const double *BT = algo.BT.data();
    const double *B = algo.B.data();
    const size_t uvStr = Xs.uvStride();
    SoaPanel soa;
    for (int c = 0; c < nc; ++c) {
        const float *plane =
            x.data() + (size_t(b) * nc + c) * size_t(h) * w;
        if (mask) {
            std::uint64_t *mreg = mask->plane(c, 0);
            std::fill(mreg, mreg + mask->wordsPerPlane(), 0);
        }
        for (int p0 = 0; p0 < tcnt; p0 += mk::kTilePanel) {
            const int cnt = std::min(mk::kTilePanel, tcnt - p0);
            int tr[mk::kTilePanel], tc[mk::kTilePanel];
            for (int l = 0; l < cnt; ++l) {
                const int t = t0 + p0 + l;
                tr[l] = grid.tileRow(t / grid.tilesW);
                tc[l] = grid.tileCol(t % grid.tilesW);
            }
            K.packTilePanel(soa.data(), plane, h, w, tr, tc, a, a, cnt);
            K.xformToTilesHalf(BT, a, a, B, a, a, soa.data(),
                               Xs.uvBase(c, 0, p0), uvStr, cnt,
                               halfKind);
            if (mask)
                mask->orPanelBits(
                    c, 0, p0 / mk::kTilePanel,
                    K.panelZeroMaskHalf(Xs.uvBase(c, 0, p0), uvStr,
                                        a * a, cnt));
        }
    }
}

void
elementwiseForwardStripSparse(const WinoTiles &Xs, const WinoWeights &W,
                              int tcnt, WinoTiles &Ys,
                              const ActMask &mask)
{
    winomc_assert(Xs.channels() == W.inChannels() &&
                  Ys.channels() == W.outChannels() &&
                  Xs.tiles() >= tcnt && Ys.tiles() >= tcnt,
                  "elementwiseForwardStripSparse shape mismatch");
    const int a2 = Xs.uvCount();
    const int nj = W.outChannels();
    const int ni = W.inChannels();
    const auto &K = mk::kernels();

    // Strip-serial mirror of elementwiseForwardSparseInto: same
    // whole-column compaction and group descriptor, so fused sparse
    // stays bitwise identical to staged sparse (and to dense fp32).
    std::vector<const float *> xc(static_cast<std::size_t>(ni));
    std::vector<float> wc(static_cast<std::size_t>(ni));
    std::vector<std::uint8_t> grp(
        static_cast<std::size_t>((ni + kIUnroll - 1) / kIUnroll));
    std::vector<std::uint8_t> live(static_cast<std::size_t>(ni));
    const std::size_t xrs = Xs.uvStride() / std::size_t(Xs.channels());
    for (int uv = 0; uv < a2; ++uv) {
        const float *xuv = Xs.row(uv, 0);
        for (int j0 = 0; j0 < nj; j0 += kJBlock) {
            const int jn = std::min(kJBlock, nj - j0);
            float *yrows[kJBlock];
            for (int jj = 0; jj < jn; ++jj) {
                yrows[jj] = Ys.row(uv, j0 + jj);
                std::fill(yrows[jj], yrows[jj] + tcnt, 0.0f);
            }
            for (int k0 = 0; k0 < tcnt; k0 += kKBlock) {
                const int kb = std::min(kKBlock, tcnt - k0);
                for (int i = 0; i < ni; ++i)
                    live[std::size_t(i)] =
                        !mask.rowRangeZero(uv, i, k0, kb);
                for (int jj = 0; jj < jn; ++jj) {
                    const float *wrow =
                        W.raw() +
                        (std::size_t(uv) * nj + j0 + jj) * ni;
                    int nv = 0, ng = 0, tailOrig = kIUnroll;
                    for (int i0 = 0; i0 < ni; i0 += kIUnroll) {
                        const int ib = std::min(kIUnroll, ni - i0);
                        const int base = nv;
                        for (int ii = 0; ii < ib; ++ii) {
                            const int i = i0 + ii;
                            const float wval = wrow[i];
                            wc[std::size_t(nv)] = wval;
                            xc[std::size_t(nv)] =
                                xuv + std::size_t(i) * xrs + k0;
                            nv += int(wval != 0.0f) &
                                  int(live[std::size_t(i)]);
                        }
                        if (nv != base) {
                            grp[std::size_t(ng++)] =
                                std::uint8_t(nv - base);
                            tailOrig = ib;
                        }
                    }
                    if (nv == 0)
                        continue;
                    K.panelAccumGrouped(yrows[jj] + k0, xc.data(),
                                        wc.data(), nv, kb, grp.data(),
                                        ng, tailOrig);
                }
            }
        }
    }
}

void
elementwiseForwardStripHalf(const HalfTiles &Xs, const WinoWeights &W,
                            int tcnt, WinoTiles &Ys, int halfKind,
                            const ActMask *mask)
{
    winomc_assert(Xs.channels() == W.inChannels() &&
                  Ys.channels() == W.outChannels() &&
                  Xs.tiles() >= tcnt && Ys.tiles() >= tcnt,
                  "elementwiseForwardStripHalf shape mismatch");
    const int a2 = Xs.uvCount();
    const int nj = W.outChannels();
    const int ni = W.inChannels();
    const auto &K = mk::kernels();

    // Whole-column compaction as in elementwiseForwardHalfInto: the
    // half kernel's sequential per-row chain makes the merge bitwise
    // free, and each y panel is touched once per k-block.
    std::vector<const std::uint16_t *> xc(static_cast<std::size_t>(ni));
    std::vector<float> wc(static_cast<std::size_t>(ni));
    std::vector<std::uint8_t> live(static_cast<std::size_t>(ni));
    const std::size_t xrs = std::size_t(Xs.batch()) * Xs.tiles();
    for (int uv = 0; uv < a2; ++uv) {
        const std::uint16_t *xuv = Xs.row(uv, 0);
        for (int j0 = 0; j0 < nj; j0 += kJBlock) {
            const int jn = std::min(kJBlock, nj - j0);
            float *yrows[kJBlock];
            for (int jj = 0; jj < jn; ++jj) {
                yrows[jj] = Ys.row(uv, j0 + jj);
                std::fill(yrows[jj], yrows[jj] + tcnt, 0.0f);
            }
            for (int k0 = 0; k0 < tcnt; k0 += kKBlock) {
                const int kb = std::min(kKBlock, tcnt - k0);
                for (int i = 0; i < ni; ++i)
                    live[std::size_t(i)] =
                        !mask || !mask->rowRangeZero(uv, i, k0, kb);
                for (int jj = 0; jj < jn; ++jj) {
                    const float *wrow =
                        W.raw() +
                        (std::size_t(uv) * nj + j0 + jj) * ni;
                    int nv = 0;
                    for (int i = 0; i < ni; ++i) {
                        const float wval = wrow[i];
                        wc[std::size_t(nv)] = wval;
                        xc[std::size_t(nv)] =
                            xuv + std::size_t(i) * xrs + k0;
                        nv += int(wval != 0.0f) &
                              int(live[std::size_t(i)]);
                    }
                    if (nv == 0)
                        continue;
                    K.panelAccumHalf(yrows[jj] + k0, xc.data(),
                                     wc.data(), nv, kb, halfKind);
                }
            }
        }
    }
}

Tensor
winogradForward(const Tensor &x, const WinoWeights &W,
                const WinogradAlgo &algo)
{
    WinoPlan plan(algo, x.n(), W.inChannels(), W.outChannels(), x.h(),
                  x.w());
    Tensor y(x.n(), W.outChannels(), x.h(), x.w());
    // Transient plan, nobody reads its tile caches afterwards.
    if (plan.shouldFuse(false))
        plan.forwardFusedInto(x, W, y);
    else
        plan.forwardInto(x, W, y);
    return y;
}

Tensor
winogradBackwardData(const Tensor &dy, const WinoWeights &W,
                     const WinogradAlgo &algo, int h, int w)
{
    winomc_assert(dy.h() == h && dy.w() == w,
                  "winogradBackwardData: \"same\" conv implies dy and dx "
                  "share spatial size");
    WinoPlan plan(algo, dy.n(), W.inChannels(), W.outChannels(), h, w);
    Tensor dx(dy.n(), W.inChannels(), h, w);
    if (plan.shouldFuse(false))
        plan.backwardDataFusedInto(dy, W, dx);
    else
        plan.backwardDataInto(dy, W, dx);
    return dx;
}

WinoWeights
winogradGradWeights(const Tensor &x, const Tensor &dy,
                    const WinogradAlgo &algo)
{
    WinoPlan plan(algo, x.n(), x.c(), dy.c(), x.h(), x.w());
    WinoWeights dW(algo.alpha, dy.c(), x.c());
    plan.gradWeightsInto(x, dy, dW);
    return dW;
}

Tensor
directConvForward(const Tensor &x, const Tensor &w)
{
    WINOMC_SPAN("direct.fwd", "wino");
    winomc_assert(x.c() == w.c(), "channel mismatch in direct conv");
    winomc_assert(w.h() == w.w() && w.h() % 2 == 1,
                  "direct conv expects odd square filters");
    const int r = w.h();
    const int pad = (r - 1) / 2;
    Tensor y(x.n(), w.n(), x.h(), x.w());
    const int nj = w.n();
    const int nc = x.c();
    const int hh = x.h();
    const int ww = x.w();
    const auto &K = mk::kernels();
    const float *xbase = x.data();
    float *ybase = y.data();
    StageTimer probe("direct.fwd", 2.0 * x.n() * double(nj) * nc * r * r *
                                       double(hh) * ww);

    parallelFor(0, std::int64_t(x.n()) * nj, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        // One double-precision accumulator row per task, swept along
        // the unit-stride ox axis by the rowAccumDouble micro-kernel.
        // Per output element the (i, ky, kx) reduction order matches
        // the scalar triple loop it replaced.
        std::vector<double> accRow(size_t(ww), 0.0);
        for (std::int64_t bj = lo; bj < hi; ++bj) {
            const int b = int(bj / nj);
            const int j = int(bj % nj);
            float *yplane =
                ybase + (size_t(b) * nj + j) * size_t(hh) * ww;
            for (int oy = 0; oy < hh; ++oy) {
                std::fill(accRow.begin(), accRow.end(), 0.0);
                for (int i = 0; i < nc; ++i) {
                    const float *xplane =
                        xbase + (size_t(b) * nc + i) * size_t(hh) * ww;
                    for (int ky = 0; ky < r; ++ky) {
                        const int iy = oy + ky - pad;
                        if (iy < 0 || iy >= hh)
                            continue;
                        const float *xrow = xplane + size_t(iy) * ww;
                        for (int kx = 0; kx < r; ++kx) {
                            // ix = ox + kx - pad must stay in [0, ww)
                            const int lo2 = std::max(0, pad - kx);
                            const int hi2 = std::min(ww, ww + pad - kx);
                            if (hi2 <= lo2)
                                continue;
                            K.rowAccumDouble(
                                accRow.data() + lo2,
                                xrow + lo2 + kx - pad,
                                double(w.at(j, i, ky, kx)), hi2 - lo2);
                        }
                    }
                }
                float *yrow = yplane + size_t(oy) * ww;
                for (int ox = 0; ox < ww; ++ox)
                    yrow[ox] = float(accRow[size_t(ox)]);
            }
        }
    });
    return y;
}

Tensor
directConvBackwardData(const Tensor &dy, const Tensor &w)
{
    WINOMC_SPAN("direct.bwd_data", "wino");
    winomc_assert(dy.c() == w.n(), "channel mismatch in backward data");
    const int r = w.h();
    const int pad = (r - 1) / 2;
    Tensor dx(dy.n(), w.c(), dy.h(), dy.w());
    const int ni = w.c();
    const int nj = dy.c();
    const int hh = dy.h();
    const int ww = dy.w();
    const auto &K = mk::kernels();
    const float *dybase = dy.data();
    float *dxbase = dx.data();
    StageTimer probe("direct.bwd_data",
                     2.0 * dy.n() * double(nj) * ni * r * r * double(hh) *
                         ww);

    parallelFor(0, std::int64_t(dy.n()) * ni, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        // Same accumulator-row scheme as the forward kernel; the
        // (j, ky, kx) reduction order per element matches the scalar
        // loops it replaced.
        std::vector<double> accRow(size_t(ww), 0.0);
        for (std::int64_t bi = lo; bi < hi; ++bi) {
            const int b = int(bi / ni);
            const int i = int(bi % ni);
            float *dxplane =
                dxbase + (size_t(b) * ni + i) * size_t(hh) * ww;
            for (int iy = 0; iy < hh; ++iy) {
                std::fill(accRow.begin(), accRow.end(), 0.0);
                for (int j = 0; j < nj; ++j) {
                    const float *dyplane =
                        dybase + (size_t(b) * nj + j) * size_t(hh) * ww;
                    for (int ky = 0; ky < r; ++ky) {
                        const int oy = iy - ky + pad;
                        if (oy < 0 || oy >= hh)
                            continue;
                        const float *dyrow = dyplane + size_t(oy) * ww;
                        for (int kx = 0; kx < r; ++kx) {
                            // ox = ix - kx + pad must stay in [0, ww)
                            const int lo2 = std::max(0, kx - pad);
                            const int hi2 = std::min(ww, ww + kx - pad);
                            if (hi2 <= lo2)
                                continue;
                            K.rowAccumDouble(
                                accRow.data() + lo2,
                                dyrow + lo2 - kx + pad,
                                double(w.at(j, i, ky, kx)), hi2 - lo2);
                        }
                    }
                }
                float *dxrow = dxplane + size_t(iy) * ww;
                for (int ix = 0; ix < ww; ++ix)
                    dxrow[ix] = float(accRow[size_t(ix)]);
            }
        }
    });
    return dx;
}

Tensor
directConvForwardEx(const Tensor &x, const Tensor &w, int strideH,
                    int strideW, int padH, int padW)
{
    WINOMC_SPAN("direct.fwd_ex", "wino");
    winomc_assert(x.c() == w.c(), "channel mismatch in direct conv");
    winomc_assert(strideH >= 1 && strideW >= 1 && padH >= 0 && padW >= 0,
                  "bad conv geometry: stride ", strideH, "x", strideW,
                  " pad ", padH, "x", padW);
    const int kh = w.h();
    const int kw = w.w();
    const int oh = (x.h() + 2 * padH - kh) / strideH + 1;
    const int ow = (x.w() + 2 * padW - kw) / strideW + 1;
    winomc_assert(oh >= 1 && ow >= 1, "conv output collapses to ", oh,
                  "x", ow);
    Tensor y(x.n(), w.n(), oh, ow);
    const int nj = w.n();
    const int nc = x.c();
    const int hh = x.h();
    const int ww = x.w();
    const float *xbase = x.data();
    float *ybase = y.data();
    StageTimer probe("direct.fwd", 2.0 * x.n() * double(nj) * nc * kh *
                                       kw * double(oh) * ow);

    // Scalar with one double accumulator per output element: this is
    // the oracle generalized strides/pads/rect-kernels are verified
    // against, so clarity and a fixed (i, ky, kx) reduction order beat
    // the strided-row vectorization the unit-stride kernel above has.
    parallelFor(0, std::int64_t(x.n()) * nj, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t bj = lo; bj < hi; ++bj) {
            const int b = int(bj / nj);
            const int j = int(bj % nj);
            float *yplane =
                ybase + (size_t(b) * nj + j) * size_t(oh) * ow;
            for (int oy = 0; oy < oh; ++oy) {
                for (int ox = 0; ox < ow; ++ox) {
                    double acc = 0.0;
                    for (int i = 0; i < nc; ++i) {
                        const float *xplane =
                            xbase +
                            (size_t(b) * nc + i) * size_t(hh) * ww;
                        for (int ky = 0; ky < kh; ++ky) {
                            const int iy = oy * strideH + ky - padH;
                            if (iy < 0 || iy >= hh)
                                continue;
                            const float *xrow =
                                xplane + size_t(iy) * ww;
                            for (int kx = 0; kx < kw; ++kx) {
                                const int ix = ox * strideW + kx - padW;
                                if (ix < 0 || ix >= ww)
                                    continue;
                                acc += double(w.at(j, i, ky, kx)) *
                                       xrow[ix];
                            }
                        }
                    }
                    yplane[size_t(oy) * ow + ox] = float(acc);
                }
            }
        }
    });
    return y;
}

Tensor
directConvGradWeights(const Tensor &x, const Tensor &dy, int r)
{
    WINOMC_SPAN("direct.grad_weights", "wino");
    winomc_assert(x.n() == dy.n() && x.h() == dy.h() && x.w() == dy.w(),
                  "shape mismatch in direct weight gradient");
    const int pad = (r - 1) / 2;
    Tensor dw(dy.c(), x.c(), r, r);
    const int ni = x.c();

    // Output partition over (j, i): the batch reduction stays inside
    // one task, keeping the summation order thread-count invariant.
    // Stays scalar: the serial (b, oy, ox) accumulation order is part
    // of the bitwise contract and does not map onto the fixed-chain
    // dot-product kernel.
    parallelFor(0, std::int64_t(dy.c()) * ni, 1,
                [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t ji = lo; ji < hi; ++ji) {
            const int j = int(ji / ni);
            const int i = int(ji % ni);
            for (int ky = 0; ky < r; ++ky) {
                for (int kx = 0; kx < r; ++kx) {
                    double acc = 0.0;
                    for (int b = 0; b < x.n(); ++b) {
                        for (int oy = 0; oy < x.h(); ++oy) {
                            int iy = oy + ky - pad;
                            if (iy < 0 || iy >= x.h())
                                continue;
                            for (int ox = 0; ox < x.w(); ++ox) {
                                int ix = ox + kx - pad;
                                if (ix < 0 || ix >= x.w())
                                    continue;
                                acc += double(dy.at(b, j, oy, ox)) *
                                       x.at(b, i, iy, ix);
                            }
                        }
                    }
                    dw.at(j, i, ky, kx) = float(acc);
                }
            }
        }
    });
    return dw;
}

} // namespace winomc
