file(REMOVE_RECURSE
  "libwinomc_quant.a"
)
