/**
 * @file
 * SLO monitoring for the serving engine: sliding-window latency
 * objectives with multi-window burn-rate alerting.
 *
 * The objective is availability-style: "at least `targetFraction` of
 * requests finish within `latencyObjectiveUs`". The error budget is
 * the complement (0.999 -> 0.1% of requests may violate). The burn
 * rate over a window is
 *
 *     burn = violation_fraction_in_window / (1 - targetFraction)
 *
 * i.e. how many times faster than "exactly on budget" the service is
 * consuming its error budget (burn 1.0 = spending the budget exactly
 * at the sustainable rate; burn 10 = the budget for the whole period
 * gone in a tenth of it). Alerting follows the multi-window rule: the
 * alert FIRES only when BOTH the short and the long window burn above
 * `burnThreshold` — the long window proves the problem is sustained
 * (no paging on a single slow batch), the short window proves it is
 * still happening (the alert clears promptly after recovery).
 *
 * Mechanics: per-second ring buckets of {total, violations} counts,
 * sized to the long window, advanced lazily by observation/evaluation
 * timestamps. Everything is driven by the caller's clock, so tests
 * inject virtual seconds (observeAt/evaluateAt) and get deterministic
 * transitions; the engine's batcher thread uses the steady-clock
 * variants.
 *
 * Knob: WINOMC_SLO_LATENCY_US overrides the objective latency
 * (env.hh discipline). Published metrics: slo.objective_us,
 * slo.burn_rate_short, slo.burn_rate_long, slo.alert_active (gauges),
 * slo.violations (counter). Alert transitions additionally emit
 * structured log lines ("slo: burn-rate alert firing/cleared ...").
 */

#ifndef WINOMC_SERVE_SLO_HH
#define WINOMC_SERVE_SLO_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace winomc::serve {

struct SloConfig
{
    /** Latency objective in us; 0 reads WINOMC_SLO_LATENCY_US
     *  (default 50000 = 50 ms). */
    double latencyObjectiveUs = 0.0;
    /** Fraction of requests that must meet the objective. */
    double targetFraction = 0.999;
    /** Fast "is it still happening" window, seconds. */
    int shortWindowSec = 60;
    /** Slow "is it sustained" window, seconds (ring size; capped at
     *  one hour). */
    int longWindowSec = 600;
    /** Both windows must burn at or above this to fire. */
    double burnThreshold = 2.0;
};

/** `cfg` with latencyObjectiveUs resolved against the env knob. */
SloConfig resolveSloConfig(SloConfig cfg = {});

class SloMonitor
{
  public:
    explicit SloMonitor(const SloConfig &cfg = {});

    /** Record one served request's latency (steady clock). */
    void observe(double latencyUs);
    /** Same, at virtual time `tSec` (monotone across calls). */
    void observeAt(double latencyUs, double tSec);

    /** Recompute burn rates, publish the slo.* gauges, log alert
     *  transitions. Returns whether the alert is active. The engine
     *  calls this once per dispatched batch. */
    bool evaluate();
    bool evaluateAt(double tSec);

    /** Burn rate over the trailing `windowSec` seconds at the last
     *  advanced time (1.0 = consuming the error budget exactly on
     *  schedule; 0 when the window saw no requests). */
    double burnRate(int windowSec) const;

    bool alerting() const;
    std::uint64_t observed() const;
    std::uint64_t violations() const;
    const SloConfig &config() const { return cfg; }

  private:
    struct Bucket
    {
        std::uint64_t total = 0;
        std::uint64_t violations = 0;
    };

    double nowSec() const;
    void advanceTo(long long sec); ///< callers hold mu
    double burnRateLocked(int windowSec) const;

    SloConfig cfg;
    mutable std::mutex mu;
    std::vector<Bucket> ring; ///< one bucket per second, longWindowSec
    long long curSec = 0;     ///< bucket the ring head points at
    bool alertActive = false;
    std::uint64_t nObserved = 0;
    std::uint64_t nViolations = 0;
    std::chrono::steady_clock::time_point epoch;
};

} // namespace winomc::serve

#endif // WINOMC_SERVE_SLO_HH
