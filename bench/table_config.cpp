/**
 * @file
 * Tables III and IV: simulated system configuration and the evaluated
 * system variants, as encoded in this library's defaults.
 */

#include <cstdio>

#include "common/table.hh"
#include "common/units.hh"
#include "memnet/link_model.hh"
#include "mpt/layer_sim.hh"
#include "ndp/config.hh"
#include "noc/network.hh"

using namespace winomc;

int
main()
{
    Table t3("Table III: simulation configuration");
    t3.header({"parameter", "value"});
    ndp::NdpConfig ndp_cfg;
    noc::NocConfig noc_cfg;
    t3.row().cell("router clock").cell("1.0 GHz");
    t3.row().cell("full link").cell("16 lanes x 15 Gbps = 30 GB/s/dir");
    t3.row().cell("narrow link").cell("8 lanes x 10 Gbps = 10 GB/s/dir");
    t3.row().cell("SerDes + router latency/hop").cell("7 ns");
    t3.row().cell("topology").cell("ring (groups) + 2D FBFLY (cluster)");
    t3.row().cell("routing").cell("minimal");
    t3.row().cell("collective packet").cell("256 B");
    t3.row().cell("other packets").cell("64 B");
    t3.row().cell("VCs / buffer depth")
        .cell(std::to_string(noc_cfg.vcs) + " / " +
              std::to_string(noc_cfg.bufferDepth) + " flits");
    t3.row().cell("DRAM bandwidth").cell("320 GB/s (HMC)");
    t3.row().cell("systolic array")
        .cell(std::to_string(ndp_cfg.systolicDim) + "x" +
              std::to_string(ndp_cfg.systolicDim) + " FP32 MACs");
    t3.row().cell("vector lanes")
        .cell(std::to_string(ndp_cfg.vectorLanes));
    t3.row().cell("transform units")
        .cell(std::to_string(ndp_cfg.transformLanes) + " MACs/cycle");
    t3.row().cell("input buffers").cell("2 x 512 KiB (double buffered)");
    t3.print();

    Table t4("Table IV: system configurations");
    t4.header({"abbr", "description"});
    t4.row().cell("d_dp").cell(
        "direct convolution, data parallelism, update w");
    t4.row().cell("w_dp").cell(
        "Winograd conv F(4x4,3x3), data parallelism, update w");
    t4.row().cell("w_mp").cell(
        "Winograd + MPT (16Ng,16Nc), F(2x2,3x3), update W");
    t4.row().cell("w_mp+").cell("w_mp + activation predict / 0-skip");
    t4.row().cell("w_mp++").cell("w_mp+ + dynamic clustering "
                                 "{(1,p),(4,p/4),(16,p/16)}");
    t4.print();
    return 0;
}
