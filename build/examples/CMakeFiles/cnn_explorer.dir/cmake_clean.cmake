file(REMOVE_RECURSE
  "CMakeFiles/cnn_explorer.dir/cnn_explorer.cpp.o"
  "CMakeFiles/cnn_explorer.dir/cnn_explorer.cpp.o.d"
  "cnn_explorer"
  "cnn_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
