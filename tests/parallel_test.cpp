/**
 * @file
 * Unit tests for the shared thread pool / parallelFor primitive, plus
 * thread-count parity tests proving the numeric Winograd kernels are
 * bitwise identical between WINOMC_THREADS=1 and WINOMC_THREADS=8.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"

using namespace winomc;

TEST(ParseThreadCount, AcceptsPositiveIntegers)
{
    EXPECT_EQ(parseThreadCount("1"), 1);
    EXPECT_EQ(parseThreadCount("8"), 8);
    EXPECT_EQ(parseThreadCount("128"), 128);
}

TEST(ParseThreadCount, RejectsGarbage)
{
    EXPECT_EQ(parseThreadCount(nullptr), 0);
    EXPECT_EQ(parseThreadCount(""), 0);
    EXPECT_EQ(parseThreadCount("0"), 0);
    EXPECT_EQ(parseThreadCount("-4"), 0);
    EXPECT_EQ(parseThreadCount("abc"), 0);
    EXPECT_EQ(parseThreadCount("4x"), 0);
    EXPECT_EQ(parseThreadCount("1.5"), 0);
    EXPECT_EQ(parseThreadCount(" "), 0);
}

TEST(ParseThreadCount, ClampsOversizedValues)
{
    // Too large (including strtol overflow) clamps to the ceiling
    // instead of crashing or spawning an absurd pool.
    EXPECT_EQ(parseThreadCount("999999999"), kMaxThreadCount);
    EXPECT_EQ(parseThreadCount("4097"), kMaxThreadCount);
    EXPECT_EQ(parseThreadCount("99999999999999999999999"),
              kMaxThreadCount);
    EXPECT_EQ(parseThreadCount("4096"), kMaxThreadCount);
    // Negative overflow is non-positive, not oversized.
    EXPECT_EQ(parseThreadCount("-99999999999999999999999"), 0);
}

TEST(ParseThreadCount, TrailingWhitespaceIsTolerated)
{
    EXPECT_EQ(parseThreadCount("8 "), 8);
    EXPECT_EQ(parseThreadCount(" 8"), 8);
    EXPECT_EQ(parseThreadCount("8\t"), 8);
}

TEST(ThreadPool, SetThreadCountRestoresDefaultOnNonPositive)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.threadCount(), 2);
    pool.setThreadCount(-7);
    EXPECT_EQ(pool.threadCount(), defaultThreadCount());
    pool.setThreadCount(3);
    EXPECT_EQ(pool.threadCount(), 3);
}

TEST(ParseThreadCount, DefaultIsAtLeastOne)
{
    EXPECT_GE(defaultThreadCount(), 1);
}

TEST(ParallelFor, EmptyAndReversedRangesNeverInvoke)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    auto count = [&](std::int64_t, std::int64_t) { ++calls; };
    pool.parallelFor(0, 0, 1, count);
    pool.parallelFor(5, 5, 1, count);
    pool.parallelFor(10, 3, 1, count);
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(8);
    const int n = 10007; // prime: never divides evenly into chunks
    std::vector<int> hits(n, 0);
    pool.parallelFor(0, n, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
            ++hits[size_t(i)]; // chunks are disjoint, so no race
    });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }));
}

TEST(ParallelFor, ChunksAreContiguousAndRespectGrain)
{
    ThreadPool pool(4);
    const std::int64_t n = 1000, grain = 64;
    std::mutex mu;
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    pool.parallelFor(0, n, grain,
                     [&](std::int64_t lo, std::int64_t hi) {
        std::lock_guard<std::mutex> g(mu);
        chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    ASSERT_FALSE(chunks.empty());
    EXPECT_EQ(chunks.front().first, 0);
    EXPECT_EQ(chunks.back().second, n);
    int undersized = 0;
    for (size_t i = 0; i < chunks.size(); ++i) {
        if (i + 1 < chunks.size()) {
            EXPECT_EQ(chunks[i].second, chunks[i + 1].first);
        }
        if (chunks[i].second - chunks[i].first < grain)
            ++undersized;
    }
    EXPECT_LE(undersized, 1); // only the tail chunk may be short
}

TEST(ParallelFor, GrainLargerThanRangeRunsInline)
{
    ThreadPool pool(4);
    int calls = 0;
    std::thread::id where;
    pool.parallelFor(0, 10, 100, [&](std::int64_t lo, std::int64_t hi) {
        ++calls;
        where = std::this_thread::get_id();
        EXPECT_EQ(lo, 0);
        EXPECT_EQ(hi, 10);
    });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(where, std::this_thread::get_id());
}

TEST(ParallelFor, OneThreadIsFullySerialInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    int calls = 0;
    std::thread::id where;
    pool.parallelFor(0, 1000, 1, [&](std::int64_t lo, std::int64_t hi) {
        ++calls;
        where = std::this_thread::get_id();
        EXPECT_EQ(lo, 0);
        EXPECT_EQ(hi, 1000);
    });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(where, std::this_thread::get_id());
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    const int outer = 16, inner = 100;
    std::vector<std::int64_t> sums(outer, 0);
    pool.parallelFor(0, outer, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t o = lo; o < hi; ++o) {
            const std::thread::id me = std::this_thread::get_id();
            pool.parallelFor(0, inner, 1,
                             [&](std::int64_t ilo, std::int64_t ihi) {
                // Nested bodies must stay on the calling worker.
                EXPECT_EQ(std::this_thread::get_id(), me);
                for (std::int64_t i = ilo; i < ihi; ++i)
                    sums[size_t(o)] += i;
            });
        }
    });
    for (int o = 0; o < outer; ++o)
        EXPECT_EQ(sums[size_t(o)], inner * (inner - 1) / 2);
}

TEST(ParallelFor, PropagatesExceptionsAndSurvives)
{
    ThreadPool pool(4);
    auto boom = [&](std::int64_t lo, std::int64_t) {
        if (lo == 0)
            throw std::runtime_error("chunk failed");
    };
    EXPECT_THROW(pool.parallelFor(0, 1000, 1, boom), std::runtime_error);
    // Pool is still serviceable after an exception.
    std::atomic<std::int64_t> total{0};
    pool.parallelFor(0, 100, 1, [&](std::int64_t lo, std::int64_t hi) {
        total += hi - lo;
    });
    EXPECT_EQ(total.load(), 100);
}

TEST(ParallelFor, PropagatesExceptionsSerially)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(0, 10, 1,
                                  [](std::int64_t, std::int64_t) {
                     throw std::runtime_error("serial failure");
                 }),
                 std::runtime_error);
}

TEST(ThreadPool, SetThreadCountResizes)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.threadCount(), 2);
    pool.setThreadCount(6);
    EXPECT_EQ(pool.threadCount(), 6);
    std::atomic<std::int64_t> total{0};
    pool.parallelFor(0, 5000, 1, [&](std::int64_t lo, std::int64_t hi) {
        total += hi - lo;
    });
    EXPECT_EQ(total.load(), 5000);
    pool.setThreadCount(1);
    EXPECT_EQ(pool.threadCount(), 1);
    pool.parallelFor(0, 10, 1, [&](std::int64_t lo, std::int64_t hi) {
        total += hi - lo;
    });
    EXPECT_EQ(total.load(), 5010);
}

TEST(ThreadPool, GlobalIsSingletonWithPositiveCount)
{
    ThreadPool &a = ThreadPool::global();
    ThreadPool &b = ThreadPool::global();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.threadCount(), 1);
}

// ---------------------------------------------------------------------
// Thread-count parity: every numeric kernel must produce bitwise
// identical results with 1 thread and with 8 threads, including shapes
// whose work-item count is smaller than the thread count.
// ---------------------------------------------------------------------

namespace {

struct ParityShape
{
    int batch, chIn, chOut, hw;
};

// Deliberately includes tiny/odd shapes: hw=2 is a single F(2x2) tile,
// hw=5/hw=6 give odd tile grids with fewer (batch, channel) slices
// than the 8 worker threads.
const ParityShape kShapes[] = {
    {1, 1, 1, 2},
    {1, 3, 5, 5},
    {1, 2, 3, 6},
    {2, 5, 4, 7},
    {3, 4, 2, 12},
    {2, 8, 8, 16},
};

void
expectTilesEqual(const WinoTiles &a, const WinoTiles &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (int uv = 0; uv < a.uvCount(); ++uv)
        for (int c = 0; c < a.channels(); ++c)
            for (int bi = 0; bi < a.batch(); ++bi)
                for (int t = 0; t < a.tiles(); ++t)
                    ASSERT_EQ(a.at(uv, c, bi, t), b.at(uv, c, bi, t))
                        << what << " uv=" << uv << " c=" << c;
}

void
expectWeightsEqual(const WinoWeights &a, const WinoWeights &b,
                   const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (int uv = 0; uv < a.uvCount(); ++uv)
        for (int j = 0; j < a.outChannels(); ++j)
            for (int i = 0; i < a.inChannels(); ++i)
                ASSERT_EQ(a.at(uv, j, i), b.at(uv, j, i))
                    << what << " uv=" << uv << " j=" << j << " i=" << i;
}

void
expectTensorsEqual(const Tensor &a, const Tensor &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    const float *pa = a.data();
    const float *pb = b.data();
    for (size_t k = 0; k < a.size(); ++k)
        ASSERT_EQ(pa[k], pb[k]) << what << " flat index " << k;
}

struct KernelOutputs
{
    WinoTiles X, Y, dY, dX;
    WinoWeights W, dW;
    Tensor y, dx, dw, directY, directDx, directDw;
};

KernelOutputs
runAllKernels(const ParityShape &s, const WinogradAlgo &algo)
{
    Rng rng(0xBADC0FFEuLL + uint64_t(s.hw));
    Tensor x(s.batch, s.chIn, s.hw, s.hw);
    Tensor w(s.chOut, s.chIn, 3, 3);
    Tensor dy(s.batch, s.chOut, s.hw, s.hw);
    x.fillUniform(rng);
    w.fillUniform(rng);
    dy.fillUniform(rng);

    KernelOutputs o;
    o.W = transformWeights(w, algo);
    o.X = transformInput(x, algo);
    o.Y = elementwiseForward(o.X, o.W);
    o.y = inverseTransform(o.Y, algo, s.hw, s.hw);
    o.dY = inverseTransformAdjoint(dy, algo);
    o.dX = elementwiseBackwardData(o.dY, o.W);
    o.dx = transformInputAdjoint(o.dX, algo, s.hw, s.hw);
    o.dW = elementwiseGradWeights(o.dY, o.X);
    o.dw = transformWeightsAdjoint(o.dW, algo);
    o.directY = directConvForward(x, w);
    o.directDx = directConvBackwardData(dy, w);
    o.directDw = directConvGradWeights(x, dy, 3);
    return o;
}

class ThreadParity : public ::testing::TestWithParam<int>
{
  protected:
    void TearDown() override
    {
        ThreadPool::global().setThreadCount(0); // back to default
    }
};

TEST_P(ThreadParity, KernelsBitwiseIdenticalAcrossThreadCounts)
{
    const ParityShape s = kShapes[size_t(GetParam())];
    const WinogradAlgo &algo =
        (GetParam() % 2 == 0) ? algoF2x2_3x3() : algoF4x4_3x3();

    ThreadPool::global().setThreadCount(1);
    KernelOutputs serial = runAllKernels(s, algo);
    ThreadPool::global().setThreadCount(8);
    KernelOutputs threaded = runAllKernels(s, algo);

    expectWeightsEqual(serial.W, threaded.W, "transformWeights");
    expectTilesEqual(serial.X, threaded.X, "transformInput");
    expectTilesEqual(serial.Y, threaded.Y, "elementwiseForward");
    expectTensorsEqual(serial.y, threaded.y, "inverseTransform");
    expectTilesEqual(serial.dY, threaded.dY, "inverseTransformAdjoint");
    expectTilesEqual(serial.dX, threaded.dX, "elementwiseBackwardData");
    expectTensorsEqual(serial.dx, threaded.dx, "transformInputAdjoint");
    expectWeightsEqual(serial.dW, threaded.dW, "elementwiseGradWeights");
    expectTensorsEqual(serial.dw, threaded.dw, "transformWeightsAdjoint");
    expectTensorsEqual(serial.directY, threaded.directY,
                       "directConvForward");
    expectTensorsEqual(serial.directDx, threaded.directDx,
                       "directConvBackwardData");
    expectTensorsEqual(serial.directDw, threaded.directDw,
                       "directConvGradWeights");
}

INSTANTIATE_TEST_SUITE_P(Shapes, ThreadParity,
                         ::testing::Range(0, int(std::size(kShapes))));

} // namespace
