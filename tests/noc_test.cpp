/**
 * @file
 * Tests for the flit-level network simulator: topology wiring
 * invariants, routing minimality, flit conservation, latency semantics,
 * bandwidth saturation, and deadlock freedom under load.
 */

#include <gtest/gtest.h>

#include <memory>

#include "noc/memcentric.hh"
#include "noc/network.hh"
#include "noc/topology.hh"
#include "noc/traffic.hh"

namespace winomc::noc {
namespace {

// ---------------------------------------------------------- Topologies

/// Wiring involution: the link through (node, port) comes back through
/// (neighbor, peerPort).
void
checkWiring(const Topology &t)
{
    for (int node = 0; node < t.nodes(); ++node) {
        for (int port = 0; port < t.ports(); ++port) {
            int peer = t.neighbor(node, port);
            if (peer < 0)
                continue;
            int back = t.peerPort(node, port);
            EXPECT_EQ(t.neighbor(peer, back), node)
                << t.name() << " node " << node << " port " << port;
            EXPECT_EQ(t.peerPort(peer, back), port)
                << t.name() << " node " << node << " port " << port;
        }
    }
}

TEST(Topology, RingWiring)
{
    RingTopology t(8);
    checkWiring(t);
    EXPECT_EQ(t.neighbor(7, 0), 0);
    EXPECT_EQ(t.neighbor(0, 1), 7);
}

TEST(Topology, FbflyWiring)
{
    FlatButterfly2D t(4);
    checkWiring(t);
    EXPECT_EQ(t.nodes(), 16);
    EXPECT_EQ(t.ports(), 6);
}

TEST(Topology, CliqueWiring)
{
    FullyConnected t(4);
    checkWiring(t);
    EXPECT_EQ(t.ports(), 3);
}

TEST(Topology, RingRoutesMinimally)
{
    RingTopology t(10);
    for (int s = 0; s < 10; ++s) {
        for (int d = 0; d < 10; ++d) {
            if (s == d)
                continue;
            int fwd = (d - s + 10) % 10;
            int expect = std::min(fwd, 10 - fwd);
            EXPECT_EQ(t.hopCount(s, d), expect) << s << "->" << d;
        }
    }

}

TEST(Topology, FbflyMaxTwoHops)
{
    FlatButterfly2D t(4);
    for (int s = 0; s < t.nodes(); ++s) {
        for (int d = 0; d < t.nodes(); ++d) {
            if (s != d) {
                EXPECT_LE(t.hopCount(s, d), 2) << s << "->" << d;
            }
        }
    }
}

TEST(Topology, CliqueSingleHop)
{
    FullyConnected t(6);
    for (int s = 0; s < 6; ++s) {
        for (int d = 0; d < 6; ++d) {
            if (s != d) {
                EXPECT_EQ(t.hopCount(s, d), 1);
            }
        }
    }
}

TEST(Topology, RingDatelineVcSwitch)
{
    RingTopology t(8);
    EXPECT_EQ(t.nextVc(7, 0, 0), 1); // crossing 7 -> 0
    EXPECT_EQ(t.nextVc(0, 1, 0), 1); // crossing 0 -> 7
    EXPECT_EQ(t.nextVc(3, 0, 0), 0);
    EXPECT_EQ(t.nextVc(3, 1, 1), 1); // stays on high VC once switched
}

// ------------------------------------------------------------- Network

NocConfig
smallCfg()
{
    NocConfig cfg;
    cfg.vcs = 2;
    cfg.bufferDepth = 32;
    cfg.hopLatency = 7;
    cfg.flitBytes = 30;
    return cfg;
}

TEST(Network, SinglePacketLatencyMatchesHops)
{
    auto net = Network(std::make_unique<RingTopology>(8), smallCfg());
    net.offerPacket(0, 2, 30); // one flit, 2 hops
    ASSERT_TRUE(net.drain(1000));
    const PacketInfo &p = net.packet(0);
    EXPECT_TRUE(p.done);
    // inject cycle + 2 hops * hopLatency + egress grant cycles; the
    // exact pipeline adds a couple of arbitration cycles.
    Tick lat = p.ejected - p.injected;
    EXPECT_GE(lat, Tick(2 * 7));
    EXPECT_LE(lat, Tick(2 * 7 + 6));
}

TEST(Network, MultiFlitPacketSerializes)
{
    auto net = Network(std::make_unique<RingTopology>(8), smallCfg());
    net.offerPacket(0, 1, 256); // ceil(256/30) = 9 flits, 1 hop
    ASSERT_TRUE(net.drain(1000));
    Tick lat = net.packet(0).ejected - net.packet(0).injected;
    // Head needs ~hopLatency; the other 8 flits pipeline at 1/cycle.
    EXPECT_GE(lat, Tick(7 + 8));
}

TEST(Network, AllPacketsDeliveredUniformTraffic)
{
    auto net = Network(std::make_unique<FlatButterfly2D>(4), smallCfg());
    Rng rng(5);
    int sent = 0;
    for (int k = 0; k < 500; ++k) {
        int s = int(rng.uniformInt(0, 15));
        int d = int(rng.uniformInt(0, 14));
        if (d >= s)
            ++d;
        net.offerPacket(s, d, 64);
        ++sent;
    }
    ASSERT_TRUE(net.drain(100000));
    EXPECT_EQ(net.ejectedCount(), uint64_t(sent));
    EXPECT_EQ(net.flitsInFlight(), 0u);
}

TEST(Network, RingHeavyLoadDrainsNoDeadlock)
{
    // All-to-all on a ring under heavy load exercises the dateline VCs.
    auto net = Network(std::make_unique<RingTopology>(16), smallCfg());
    Rng rng(6);
    int sent = 0;
    for (int k = 0; k < 2000; ++k) {
        int s = int(rng.uniformInt(0, 15));
        int d = int(rng.uniformInt(0, 14));
        if (d >= s)
            ++d;
        net.offerPacket(s, d, 128);
        ++sent;
    }
    ASSERT_TRUE(net.drain(500000)) << "possible deadlock";
    EXPECT_EQ(net.ejectedCount(), uint64_t(sent));
}

TEST(Network, NeighborRingSustainsNearFullBandwidth)
{
    auto net = Network(std::make_unique<RingTopology>(8), smallCfg());
    Rng rng(7);
    LoadPoint pt = measureLoadPoint(net, ringNeighbor(8), 0.9, 256, 2000,
                                    6000, rng);
    // Neighbor traffic uses disjoint links; ~0.9 flits/node/cycle must
    // be deliverable.
    EXPECT_GT(pt.accepted, 0.8);
    EXPECT_FALSE(pt.saturated);
}

TEST(Network, UniformRingSaturatesBeyondBisection)
{
    // Uniform on a ring saturates near 8/n = 0.5 flits/node/cycle for
    // n=16 (theoretical capacity 4/ (n/4)... conservatively below 0.9).
    auto net = Network(std::make_unique<RingTopology>(16), smallCfg());
    Rng rng(8);
    LoadPoint pt = measureLoadPoint(net, uniformRandom(16), 0.9, 64,
                                    2000, 6000, rng);
    EXPECT_LT(pt.accepted, 0.75);
}

TEST(Network, FbflyUniformOutperformsRingUniform)
{
    Rng rng_a(9), rng_b(9);
    auto ring = Network(std::make_unique<RingTopology>(16), smallCfg());
    auto fbfly = Network(std::make_unique<FlatButterfly2D>(4),
                         smallCfg());
    LoadPoint pr = measureLoadPoint(ring, uniformRandom(16), 0.7, 64,
                                    2000, 5000, rng_a);
    LoadPoint pf = measureLoadPoint(fbfly, uniformRandom(16), 0.7, 64,
                                    2000, 5000, rng_b);
    EXPECT_GT(pf.accepted, pr.accepted);
    EXPECT_LT(pf.avgLatency, pr.avgLatency);
}

TEST(Network, LatencyRisesWithLoad)
{
    Rng rng_a(10), rng_b(10);
    auto low = Network(std::make_unique<FlatButterfly2D>(4), smallCfg());
    auto high = Network(std::make_unique<FlatButterfly2D>(4), smallCfg());
    LoadPoint pl = measureLoadPoint(low, uniformRandom(16), 0.05, 64,
                                    2000, 5000, rng_a);
    LoadPoint ph = measureLoadPoint(high, uniformRandom(16), 0.6, 64,
                                    2000, 5000, rng_b);
    EXPECT_GT(ph.avgLatency, pl.avgLatency);
}

// ------------------------------------------------ MemCentricTopology

TEST(MemCentric, WiringInvolution)
{
    MemCentricTopology t(16, 16);
    EXPECT_EQ(t.nodes(), 257);
    checkWiring(t);
}

TEST(MemCentric, SmallConfigWiring)
{
    MemCentricTopology t(4, 4);
    EXPECT_EQ(t.nodes(), 17);
    checkWiring(t);
}

TEST(MemCentric, GroupRingAndClusterButterflyHops)
{
    MemCentricTopology t(16, 16);
    // Same group: ring distance.
    EXPECT_EQ(t.hopCount(t.workerAt(3, 0), t.workerAt(3, 5)), 5);
    EXPECT_EQ(t.hopCount(t.workerAt(3, 0), t.workerAt(3, 12)), 4);
    // Same cluster (same index): <= 2 butterfly hops.
    for (int g = 1; g < 16; ++g)
        EXPECT_LE(t.hopCount(t.workerAt(0, 7), t.workerAt(g, 7)), 2);
    // General case: ring (<= 8) then butterfly (<= 2).
    for (int s : {0, 37, 200}) {
        for (int d : {255, 129, 3}) {
            if (s == d)
                continue;
            EXPECT_LE(t.hopCount(s, d), 10) << s << "->" << d;
        }
    }
}

TEST(MemCentric, HostReachableFromEverywhere)
{
    MemCentricTopology t(16, 16);
    for (int w : {0, 15, 137, 255}) {
        // Worker -> host: ring to the group head (<= 8) + 1.
        EXPECT_LE(t.hopCount(w, t.hostNode()), 9);
        // Host -> worker: host link + ring.
        EXPECT_LE(t.hopCount(t.hostNode(), w), 9);
    }
}

TEST(MemCentric, MptTrafficDrains)
{
    // Simultaneous ring-neighbor (collective) and intra-cluster
    // all-to-all (tile transfer) traffic on the composite network must
    // drain - the hybrid-topology claim of Section IV.
    NocConfig cfg;
    cfg.flitBytes = 10;
    auto topo = std::make_unique<MemCentricTopology>(4, 4);
    const MemCentricTopology &t = *topo;
    Network net(std::move(topo), cfg);

    int sent = 0;
    for (int round = 0; round < 20; ++round) {
        for (int g = 0; g < 4; ++g) {
            for (int i = 0; i < 4; ++i) {
                // Collective hop to the ring successor.
                net.offerPacket(t.workerAt(g, i),
                                t.workerAt(g, (i + 1) % 4), 256);
                ++sent;
                // Tile transfer to every other cluster member.
                for (int og = 0; og < 4; ++og) {
                    if (og == g)
                        continue;
                    net.offerPacket(t.workerAt(g, i),
                                    t.workerAt(og, i), 64);
                    ++sent;
                }
            }
        }
    }
    ASSERT_TRUE(net.drain(500000)) << "composite network deadlock?";
    EXPECT_EQ(net.ejectedCount(), uint64_t(sent));
}

TEST(MemCentric, RandomTrafficWithHostDrains)
{
    NocConfig cfg;
    auto topo = std::make_unique<MemCentricTopology>(4, 4);
    Network net(std::move(topo), cfg);
    Rng rng(17);
    int sent = 0;
    for (int kk = 0; kk < 800; ++kk) {
        int s = int(rng.uniformInt(0, 16)); // host included
        int d = int(rng.uniformInt(0, 15));
        if (d >= s)
            ++d;
        net.offerPacket(s, d, 64);
        ++sent;
    }
    ASSERT_TRUE(net.drain(500000));
    EXPECT_EQ(net.ejectedCount(), uint64_t(sent));
}

} // namespace
} // namespace winomc::noc
