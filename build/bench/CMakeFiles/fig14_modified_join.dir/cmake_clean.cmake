file(REMOVE_RECURSE
  "CMakeFiles/fig14_modified_join.dir/fig14_modified_join.cpp.o"
  "CMakeFiles/fig14_modified_join.dir/fig14_modified_join.cpp.o.d"
  "fig14_modified_join"
  "fig14_modified_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_modified_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
