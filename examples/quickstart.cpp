/**
 * @file
 * Quickstart: the numeric Winograd library in five minutes.
 *
 *  1. generate exact F(m,r) transform matrices with the Toom-Cook
 *     generator;
 *  2. check Winograd convolution against direct convolution;
 *  3. train a small CNN whose convolutions are Winograd *layers*
 *     (weights updated directly in the Winograd domain, Fig 2(b)).
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "common/trace.hh"
#include "nn/basic_layers.hh"
#include "nn/conv_layer.hh"
#include "nn/dataset.hh"
#include "nn/trainer.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"
#include "winograd/toom_cook.hh"

using namespace winomc;

int
main()
{
    // ---- 1. Transform matrices from exact rational arithmetic.
    std::printf("== F(2x2,3x3) transform matrices ==\n");
    const WinogradAlgo &algo = algoF2x2_3x3();
    std::printf("B^T =\n%s", algo.BT.toString().c_str());
    std::printf("G =\n%s", algo.G.toString().c_str());
    std::printf("A^T =\n%s\n", algo.AT.toString().c_str());

    // Any F(m, r) is one call away:
    WinogradAlgo f43 = makeWinograd(4, 3);
    std::printf("generated %s with tile size %d\n\n",
                f43.name().c_str(), f43.alpha);

    // ---- 2. Winograd == direct convolution.
    Rng rng(1);
    Tensor x(2, 3, 14, 14);
    Tensor w(4, 3, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);

    Tensor reference = directConvForward(x, w);
    WinoWeights W = transformWeights(w, algo);
    Tensor winograd = winogradForward(x, W, algo);
    std::printf("max |winograd - direct| = %.2e (tolerance ~1e-4)\n\n",
                double(winograd.maxAbsDiff(reference)));

    // ---- 3. Train with Winograd layers.
    std::printf("== training a Winograd-layer CNN on the shape "
                "dataset ==\n");
    nn::Dataset train_set = nn::makeShapeDataset(320, 12, 3, rng);
    nn::Dataset val_set = nn::makeShapeDataset(96, 12, 3, rng);

    nn::Sequential net;
    net.add(std::make_unique<nn::ConvLayer>(
        1, 8, 3, nn::ConvMode::WinogradLayer, algo, rng));
    net.add(std::make_unique<nn::ReLU>());
    net.add(std::make_unique<nn::MaxPool2>());
    net.add(std::make_unique<nn::ConvLayer>(
        8, 8, 3, nn::ConvMode::WinogradLayer, algo, rng));
    net.add(std::make_unique<nn::ReLU>());
    net.add(std::make_unique<nn::MaxPool2>());
    net.add(std::make_unique<nn::Dense>(8 * 3 * 3, 3, rng));
    std::printf("parameters: %zu (Winograd-domain weights are 16/9 of "
                "spatial)\n", net.paramCount());

    nn::TrainConfig cfg;
    cfg.epochs = 6;
    cfg.batchSize = 16;
    cfg.lr = 0.08f;
    cfg.verbose = true;
    auto hist = nn::train(net, train_set, val_set, cfg, rng);
    std::printf("final validation accuracy: %.2f (chance 0.33)\n",
                hist.back().valAcc);

    // ---- 4. Observability artifacts (per-stage timings, spans).
    metrics::dumpIfConfigured();
    trace::flushIfConfigured();
    if (!metrics::configuredPath().empty())
        std::printf("metrics dump (WINOMC_METRICS): %s\n",
                    metrics::configuredPath().c_str());
    if (!trace::configuredPath().empty())
        std::printf("trace file (WINOMC_TRACE): %s\n",
                    trace::configuredPath().c_str());
    return 0;
}
