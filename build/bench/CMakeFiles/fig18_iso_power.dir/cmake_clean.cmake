file(REMOVE_RECURSE
  "CMakeFiles/fig18_iso_power.dir/fig18_iso_power.cpp.o"
  "CMakeFiles/fig18_iso_power.dir/fig18_iso_power.cpp.o.d"
  "fig18_iso_power"
  "fig18_iso_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_iso_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
