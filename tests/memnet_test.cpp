/**
 * @file
 * Tests for the memory-centric network system model: link specs,
 * bottleneck analytics vs. the event-driven message simulator, ring
 * collective timing, cluster shapes, and the wave pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "memnet/cluster.hh"
#include "memnet/collective.hh"
#include "memnet/link_model.hh"
#include "memnet/message_sim.hh"
#include "memnet/pipeline.hh"
#include "memnet/reduce_engine.hh"

#include "common/rng.hh"

namespace winomc::memnet {
namespace {

TEST(LinkSpec, TableIIIRates)
{
    EXPECT_DOUBLE_EQ(LinkSpec::full().bandwidth, 30e9);
    EXPECT_DOUBLE_EQ(LinkSpec::narrow().bandwidth, 10e9);
}

TEST(LinkModel, SingleFlowTime)
{
    noc::RingTopology ring(8);
    std::vector<std::vector<double>> traffic(
        8, std::vector<double>(8, 0.0));
    traffic[0][2] = 30e9; // one second of a full link, 2 hops
    double t = bottleneckTime(ring, traffic, LinkSpec::full());
    EXPECT_NEAR(t, 1.0 + 2 * LinkSpec::full().hopLatencySec, 1e-9);
}

TEST(LinkModel, NeighborRingLoadsAreUniform)
{
    noc::RingTopology ring(8);
    std::vector<std::vector<double>> traffic(
        8, std::vector<double>(8, 0.0));
    for (int s = 0; s < 8; ++s)
        traffic[size_t(s)][size_t((s + 1) % 8)] = 1000.0;
    auto loads = linkLoads(ring, traffic);
    // All clockwise links carry 1000; all CCW links idle.
    int busy = 0;
    for (double v : loads) {
        if (v > 0) {
            EXPECT_DOUBLE_EQ(v, 1000.0);
            ++busy;
        }
    }
    EXPECT_EQ(busy, 8);
}

TEST(LinkModel, FbflyAllToAllBottleneck)
{
    // k=4 fbfly, all-to-all V per pair: a row link src->B carries the
    // direct flow plus the 3 flows continuing into B's column: 4 V.
    noc::FlatButterfly2D fbfly(4);
    double v = 1e6;
    double t = allToAllTime(fbfly, v, LinkSpec::narrow());
    double expect = 4.0 * v / 10e9 + 2 * LinkSpec::narrow().hopLatencySec;
    EXPECT_NEAR(t, expect, 1e-9);
}

TEST(LinkModel, CliqueAllToAllIsSingleFlowPerLink)
{
    noc::FullyConnected clique(4);
    double v = 1e6;
    double t = allToAllTime(clique, v, LinkSpec::full());
    EXPECT_NEAR(t, v / 30e9 + LinkSpec::full().hopLatencySec, 1e-9);
}

TEST(MessageSim, MatchesAnalyticOnAllToAll)
{
    // The event-driven simulator should land within ~30% of the
    // ideal-schedule bound for the regular all-to-all pattern.
    for (int k : {2, 4}) {
        noc::FlatButterfly2D topo(k);
        double v = 4e6;
        double analytic = allToAllTime(topo, v, LinkSpec::narrow());
        noc::FlatButterfly2D topo2(k);
        double sim = simulateAllToAll(topo2, LinkSpec::narrow(), v);
        EXPECT_GE(sim, analytic * 0.95) << "k=" << k;
        EXPECT_LE(sim, analytic * 1.35) << "k=" << k;
    }
}

TEST(MessageSim, SerializesContendingMessages)
{
    noc::RingTopology ring(4);
    std::vector<Message> msgs{
        {0, 1, 30e9 * 0.001}, // 1 ms of link time
        {0, 1, 30e9 * 0.001},
    };
    double t = simulateMessages(ring, LinkSpec::full(), msgs);
    EXPECT_NEAR(t, 0.002, 0.0005);
    EXPECT_GT(msgs[1].finish, msgs[0].finish);
}

TEST(Collective, SingleWorkerFree)
{
    EXPECT_DOUBLE_EQ(ringAllReduceTime(1 << 20, 1, {}), 0.0);
    EXPECT_EQ(ringAllReduceBytesPerWorker(1 << 20, 1), 0u);
}

TEST(Collective, BandwidthTermDominatesLargeMessages)
{
    CollectiveConfig cfg;
    cfg.rings = 1;
    uint64_t bytes = 64 << 20; // 64 MiB
    double t = ringAllReduceTime(bytes, 16, cfg);
    double bw_term = 2.0 * 15.0 / 16.0 * double(bytes) / 30e9;
    EXPECT_NEAR(t, bw_term, 0.1 * bw_term);
}

TEST(Collective, MoreRingsCutTime)
{
    CollectiveConfig one;
    one.rings = 1;
    CollectiveConfig four;
    four.rings = 4;
    uint64_t bytes = 16 << 20;
    EXPECT_GT(ringAllReduceTime(bytes, 64, one),
              2.0 * ringAllReduceTime(bytes, 64, four));
}

TEST(Collective, ShorterRingSameBandwidthTerm)
{
    // 2(n-1)/n -> the bandwidth term saturates with n; the fill term
    // grows with n. Small vs large ring differ mostly in fill.
    CollectiveConfig cfg;
    uint64_t bytes = 1 << 20;
    double t16 = ringAllReduceTime(bytes, 16, cfg);
    double t256 = ringAllReduceTime(bytes, 256, cfg);
    EXPECT_GT(t256, t16);
}

TEST(Cluster, ShapesOfSectionIV)
{
    auto s16 = ClusterShape::groups16(256);
    EXPECT_EQ(s16.ng, 16);
    EXPECT_EQ(s16.nc, 16);
    EXPECT_EQ(s16.transferMode(), TransferMode::TwoD);
    EXPECT_EQ(s16.ringLength(), 16);

    auto s4 = ClusterShape::groups4(256);
    EXPECT_EQ(s4.nc, 64);
    EXPECT_EQ(s4.transferMode(), TransferMode::OneD);

    auto dp = ClusterShape::dataParallel(256);
    EXPECT_EQ(dp.ng, 1);
    EXPECT_EQ(dp.transferMode(), TransferMode::None);
    EXPECT_EQ(dp.ringLength(), 256);
}

TEST(Cluster, TopologiesMatchShapes)
{
    EXPECT_EQ(clusterTopology(ClusterShape::dataParallel(256)), nullptr);
    auto t4 = clusterTopology(ClusterShape::groups4(256));
    ASSERT_NE(t4, nullptr);
    EXPECT_EQ(t4->nodes(), 4);
    EXPECT_EQ(t4->name(), "clique");
    auto t16 = clusterTopology(ClusterShape::groups16(256));
    ASSERT_NE(t16, nullptr);
    EXPECT_EQ(t16->nodes(), 16);
    EXPECT_EQ(t16->name(), "fbfly2d");
}

TEST(Pipeline, ComputeBoundApproachesComputeTotal)
{
    PhaseWork w;
    w.scatterSec = 0.1;
    w.computeSec = 10.0;
    w.gatherSec = 0.1;
    w.waves = 16;
    double t = pipelinedPhaseTime(w);
    EXPECT_GE(t, 10.0);
    EXPECT_LE(t, 10.0 + 0.2 + 10.0 / 16);
}

TEST(Pipeline, CommBoundApproachesCommTotal)
{
    PhaseWork w;
    w.scatterSec = 5.0;
    w.computeSec = 0.5;
    w.gatherSec = 5.0;
    w.waves = 16;
    double t = pipelinedPhaseTime(w);
    EXPECT_GE(t, 10.0);
    EXPECT_LE(t, 10.0 + 0.5 / 16 + 1.0);
}

TEST(Pipeline, SingleWaveIsSerial)
{
    PhaseWork w;
    w.scatterSec = 1.0;
    w.computeSec = 2.0;
    w.gatherSec = 3.0;
    w.waves = 1;
    EXPECT_DOUBLE_EQ(pipelinedPhaseTime(w), 6.0);
}

TEST(Pipeline, MoreWavesNeverSlower)
{
    PhaseWork a;
    a.scatterSec = 2.0;
    a.computeSec = 3.0;
    a.gatherSec = 1.0;
    a.waves = 1;
    PhaseWork b = a;
    b.waves = 8;
    PhaseWork c = a;
    c.waves = 64;
    EXPECT_GE(pipelinedPhaseTime(a), pipelinedPhaseTime(b));
    EXPECT_GE(pipelinedPhaseTime(b), pipelinedPhaseTime(c));
}

/// MessageSimStats accounts the same run the makespan describes: busy
/// seconds on every wired link, utilizations in [0, 1], totals
/// matching bytes x hops.
TEST(MessageSim, StatsAccountLinkOccupancy)
{
    noc::FlatButterfly2D topo(4);
    std::vector<Message> msgs;
    for (int s = 0; s < topo.nodes(); ++s)
        for (int d = 0; d < topo.nodes(); ++d)
            if (s != d)
                msgs.push_back({s, d, 64e3, 0.0, -1.0});
    MessageSimStats st;
    double mk =
        simulateMessages(topo, LinkSpec::narrow(), msgs, &st);
    ASSERT_GT(mk, 0.0);
    EXPECT_DOUBLE_EQ(st.makespanSec, mk);
    EXPECT_EQ(st.nodes, 16);
    EXPECT_GT(st.hops, 0u);
    EXPECT_GT(st.totalBytes, 0.0);

    double busy_sum = 0.0;
    for (int n = 0; n < st.nodes; ++n) {
        for (int p = 0; p < st.ports; ++p) {
            double u = st.linkUtilization(n, p);
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 1.0) << "node " << n << " port " << p;
            busy_sum += st.linkBusySec[size_t(n * st.ports + p)];
        }
    }
    EXPECT_GT(busy_sum, 0.0);
    EXPECT_GT(st.maxLinkUtilization(), 0.0);
    EXPECT_LE(st.meanLinkUtilization(), st.maxLinkUtilization());
    // The bottleneck link must be busy a large fraction of the
    // makespan - otherwise the sim finished later than its own
    // critical resource explains.
    EXPECT_GT(st.maxLinkUtilization(), 0.5);
}

/// The busy/idle split of each pipeline resource sums to the makespan
/// exactly, in both the compute-bound and the comm-bound regime.
TEST(Pipeline, StatsBusyPlusIdleIsMakespan)
{
    for (double compute : {0.5, 10.0}) {
        PhaseWork w;
        w.scatterSec = 2.0;
        w.computeSec = compute;
        w.gatherSec = 3.0;
        w.waves = 16;
        PipelineStats st;
        double t = pipelinedPhaseTime(w, &st);
        EXPECT_DOUBLE_EQ(st.makespanSec, t);
        EXPECT_DOUBLE_EQ(st.commBusySec, w.scatterSec + w.gatherSec);
        EXPECT_DOUBLE_EQ(st.compBusySec, w.computeSec);
        EXPECT_NEAR(st.commBusySec + st.commIdleSec, t, 1e-12);
        EXPECT_NEAR(st.compBusySec + st.compIdleSec, t, 1e-12);
        EXPECT_GE(st.commIdleSec, 0.0);
        EXPECT_GE(st.compIdleSec, 0.0);
    }
    // Comm-bound phase: the communication engine is the one that never
    // waits (up to the fill bubble).
    PhaseWork w;
    w.scatterSec = 5.0;
    w.computeSec = 0.5;
    w.gatherSec = 5.0;
    w.waves = 16;
    PipelineStats st;
    pipelinedPhaseTime(w, &st);
    EXPECT_LT(st.commIdleSec, st.compIdleSec);
}

// -------------------------------------------------------- ReduceEngine

std::vector<std::vector<float>>
randomPartials(int workers, size_t len, Rng &rng)
{
    std::vector<std::vector<float>> data;
    data.resize(size_t(workers));
    for (auto &v : data) {
        v.resize(len);
        for (auto &x : v)
            x = float(rng.uniform(-1, 1));
    }
    return data;
}

TEST(ReduceEngine, ComputesExactSumReplicatedEverywhere)
{
    Rng rng(41);
    const int workers = 8;
    const size_t len = 1000;
    auto data = randomPartials(workers, len, rng);

    std::vector<double> expect(len, 0.0);
    for (const auto &v : data)
        for (size_t i = 0; i < len; ++i)
            expect[i] += v[i];

    RingCollectiveEngine eng(workers, LinkSpec::full());
    int id = eng.submit(data);
    eng.run();
    const auto &out = eng.outcome(id);
    ASSERT_EQ(out.reduced.size(), len);
    for (size_t i = 0; i < len; ++i)
        EXPECT_NEAR(out.reduced[i], float(expect[i]), 1e-4f) << i;
    // The internal replication check already ran; chunks moved =
    // chunks * 2(n-1).
    size_t shard = (len + workers - 1) / workers;
    (void)shard;
    EXPECT_GT(out.chunksMoved, 0u);
}

TEST(ReduceEngine, TimingMatchesClosedFormModel)
{
    Rng rng(42);
    const int workers = 16;
    const size_t len = 64 * 1024; // 256 KiB message
    auto data = randomPartials(workers, len, rng);

    RingCollectiveEngine eng(workers, LinkSpec::full());
    int id = eng.submit(data);
    eng.run();

    CollectiveConfig cfg;
    cfg.rings = 1;
    double model = ringAllReduceTime(len * 4, workers, cfg);
    double sim = eng.outcome(id).finishSec;
    EXPECT_GT(sim, 0.7 * model);
    EXPECT_LT(sim, 1.4 * model);
}

TEST(ReduceEngine, ConcurrentMessagesBothCorrect)
{
    // Chunks of different messages interleave on the links; the
    // per-message Reduce blocks keep them separate (Fig 13(c)).
    Rng rng(43);
    const int workers = 4;
    auto a = randomPartials(workers, 300, rng);
    auto b = randomPartials(workers, 500, rng);

    std::vector<double> ea(300, 0.0), eb(500, 0.0);
    for (const auto &v : a)
        for (size_t i = 0; i < 300; ++i)
            ea[i] += v[i];
    for (const auto &v : b)
        for (size_t i = 0; i < 500; ++i)
            eb[i] += v[i];

    RingCollectiveEngine eng(workers, LinkSpec::full());
    int ia = eng.submit(a, 0.0);
    int ib = eng.submit(b, 1e-7); // staggered start
    eng.run();

    for (size_t i = 0; i < 300; ++i)
        EXPECT_NEAR(eng.outcome(ia).reduced[i], float(ea[i]), 1e-4f);
    for (size_t i = 0; i < 500; ++i)
        EXPECT_NEAR(eng.outcome(ib).reduced[i], float(eb[i]), 1e-4f);
    EXPECT_GT(eng.makespan(), 0.0);
}

TEST(ReduceEngine, ConcurrentMessagesShareBandwidth)
{
    // Two equal messages together must take longer than one alone
    // (they serialize on the same directed ring links) but much less
    // than twice (pipelining).
    Rng rng(44);
    const int workers = 8;
    const size_t len = 16 * 1024;

    RingCollectiveEngine solo(workers, LinkSpec::full());
    solo.submit(randomPartials(workers, len, rng));
    solo.run();

    RingCollectiveEngine duo(workers, LinkSpec::full());
    duo.submit(randomPartials(workers, len, rng));
    duo.submit(randomPartials(workers, len, rng));
    duo.run();

    EXPECT_GT(duo.makespan(), solo.makespan());
    EXPECT_LT(duo.makespan(), 2.5 * solo.makespan());
}

/// Link accounting of the collective engine: every ring link moves the
/// same chunk count (2(n-1) per shard round-robin), busy seconds are
/// positive everywhere, utilizations bounded, and the byte total
/// matches chunks x chunk size.
TEST(ReduceEngine, LinkAccountingMatchesAlgorithm)
{
    Rng rng(45);
    const int workers = 8;
    const size_t len = 8 * 1024;

    RingCollectiveEngine eng(workers, LinkSpec::full());
    int id = eng.submit(randomPartials(workers, len, rng));
    eng.run();

    EXPECT_GT(eng.totalChunksMoved(), 0u);
    EXPECT_EQ(eng.totalChunksMoved(),
              uint64_t(eng.outcome(id).chunksMoved));
    EXPECT_DOUBLE_EQ(eng.totalBytesMoved(),
                     double(eng.totalChunksMoved()) * 256.0);
    for (int w = 0; w < workers; ++w) {
        EXPECT_GT(eng.linkBusySeconds(w), 0.0) << "link " << w;
        EXPECT_GE(eng.linkUtilization(w), 0.0);
        EXPECT_LE(eng.linkUtilization(w), 1.0);
    }
    // Ring symmetry: all links carry the same load, so every busy
    // time equals the first one.
    for (int w = 1; w < workers; ++w)
        EXPECT_NEAR(eng.linkBusySeconds(w), eng.linkBusySeconds(0),
                    1e-12);
}

} // namespace
} // namespace winomc::memnet
