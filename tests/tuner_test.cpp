/**
 * @file
 * Generalized-descriptor + auto-tuner tests: ConvSpec geometry and the
 * legacy seven-field contract, WINOMC_TUNE knob parsing, the survey
 * numeric-safety bounds, analytic selection on the paper layers (F(4,3)
 * with no manual hint), DWM decomposition term counts and forward
 * parity against the generalized direct oracle (5x5, 7x7, stride-2,
 * rectangular, ragged shapes; bitwise across thread counts and
 * staged/fused inner pipelines), the on-disk tuning-cache round trip,
 * and ConvMode::Auto end to end (selection, parity, training, zero
 * steady-state allocation).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "nn/conv_layer.hh"
#include "tensor/workspace.hh"
#include "winograd/conv.hh"
#include "winograd/microkernel.hh"
#include "winograd/plan.hh"
#include "winograd/tuner.hh"
#include "workloads/layers.hh"

namespace winomc {

// This suite validates the fp32 pipeline against fp32 oracles (direct
// convolution, numeric gradients, bitwise stage parity), so the
// activation storage precision is pinned to fp32 regardless of
// WINOMC_PREC. WINOMC_SPARSE stays env-driven on purpose: sparse
// execution is bitwise identical and must keep passing here.
[[maybe_unused]] const bool kPinFp32 = [] {
    setPrec(Prec::F32);
    return true;
}();

namespace {

/** Pin the tuner to a clean analytic, cache-less state and restore
 *  every process-wide knob on exit. */
struct TunerGuard
{
    TunerGuard()
    {
        tune::setTuneMode(tune::TuneMode::Analytic);
        tune::setTuneCachePath(nullptr);
        tune::resetTunerForTest();
    }
    ~TunerGuard()
    {
        tune::setTuneMode(tune::TuneMode::Analytic);
        tune::setTuneCachePath(nullptr);
        tune::resetTunerForTest();
        setFusedMode(FusedMode::Auto);
        mk::setIsa(mk::Isa::Auto);
        ThreadPool::global().setThreadCount(0);
    }
};

ConvSpec
makeSpec(int b, int i, int j, int h, int w, int kh, int kw, int sh,
         int sw)
{
    ConvSpec s{"t", b, i, j, h, w, 0};
    s.kh = kh;
    s.kw = kw;
    s.strideH = sh;
    s.strideW = sw;
    return s;
}

// ------------------------------------------------------ ConvSpec geometry

TEST(ConvSpecGeometry, LegacySevenFieldContractIsUnchanged)
{
    ConvSpec s{"Mid-A", 256, 128, 128, 56, 56, 3};
    EXPECT_EQ(s.kernelH(), 3);
    EXPECT_EQ(s.kernelW(), 3);
    EXPECT_EQ(s.padHEff(), 1);
    EXPECT_EQ(s.outH(), 56);
    EXPECT_EQ(s.outW(), 56);
    EXPECT_TRUE(s.unitStride());
    EXPECT_TRUE(s.squareKernel());
    EXPECT_TRUE(s.samePadded());
    EXPECT_EQ(s.weightElems(), 128u * 128u * 9u);
    EXPECT_EQ(s.outputElems(), 256u * 128u * 56u * 56u);
}

TEST(ConvSpecGeometry, StrideAndExplicitPaddingShapeTheOutput)
{
    ConvSpec stem = makeSpec(2, 3, 64, 224, 224, 7, 7, 2, 2);
    stem.padH = stem.padW = 3;
    EXPECT_EQ(stem.outH(), 112);
    EXPECT_EQ(stem.outW(), 112);
    EXPECT_FALSE(stem.samePadded());

    ConvSpec rect = makeSpec(1, 2, 3, 11, 9, 5, 3, 1, 1);
    EXPECT_EQ(rect.padHEff(), 2);
    EXPECT_EQ(rect.padWEff(), 1);
    EXPECT_EQ(rect.outH(), 11);
    EXPECT_EQ(rect.outW(), 9);
    EXPECT_FALSE(rect.squareKernel());
    EXPECT_TRUE(rect.samePadded());
}

TEST(ConvSpecGeometry, KeyIsCanonicalDotFreeAndNameBlind)
{
    ConvSpec a = makeSpec(4, 8, 16, 13, 13, 3, 3, 2, 2);
    ConvSpec b = a;
    b.name = "different";
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(a.key(), "b4_c8x16_in13x13_k3x3_s2x2_p1x1");
    EXPECT_EQ(a.key().find('.'), std::string::npos);
}

// ---------------------------------------------------------- knob parsing

TEST(TuneKnob, ParsesTokensCaseInsensitivelyAndTrimmed)
{
    EXPECT_EQ(tune::parseTuneMode("off"), tune::TuneMode::Off);
    EXPECT_EQ(tune::parseTuneMode("analytic"), tune::TuneMode::Analytic);
    EXPECT_EQ(tune::parseTuneMode("measure"), tune::TuneMode::Measure);
    EXPECT_EQ(tune::parseTuneMode(" OFF "), tune::TuneMode::Off);
    EXPECT_EQ(tune::parseTuneMode("Measure\n"), tune::TuneMode::Measure);
}

TEST(TuneKnob, GarbageAndUnsetFallBackToAnalytic)
{
    EXPECT_EQ(tune::parseTuneMode(nullptr), tune::TuneMode::Analytic);
    EXPECT_EQ(tune::parseTuneMode(""), tune::TuneMode::Analytic);
    EXPECT_EQ(tune::parseTuneMode("fastest"), tune::TuneMode::Analytic);
}

// --------------------------------------------------------- numeric safety

TEST(NumericSafety, SurveyBoundsAdmitUpToF6AndRejectF8)
{
    EXPECT_TRUE(tune::numericallySafe(2, 3));
    EXPECT_TRUE(tune::numericallySafe(4, 3));
    EXPECT_TRUE(tune::numericallySafe(6, 3));
    EXPECT_FALSE(tune::numericallySafe(8, 3));
    // Error grows monotonically with the tile size.
    EXPECT_LT(tune::winogradMaxRelError(2, 3),
              tune::winogradMaxRelError(4, 3));
    EXPECT_LT(tune::winogradMaxRelError(4, 3),
              tune::winogradMaxRelError(6, 3));
    EXPECT_LT(tune::winogradMaxRelError(6, 3),
              tune::winogradMaxRelError(8, 3));
}

// ------------------------------------------------------ analytic selection

TEST(TunerSelection, PaperLayersPickF4WithNoManualHint)
{
    TunerGuard guard;
    for (const ConvSpec &spec : workloads::tableTwoLayers(8)) {
        tune::AlgoChoice c = tune::selectAlgorithm(spec);
        EXPECT_EQ(c.kind, tune::AlgoKind::Winograd) << spec.name;
        EXPECT_EQ(c.m, 4) << spec.name;
        EXPECT_GT(c.predictedMs, 0.0) << spec.name;
    }
}

TEST(TunerSelection, GeneralizedShapesDecomposeAndOneByOneStaysDirect)
{
    TunerGuard guard;
    for (const ConvSpec &spec :
         {makeSpec(4, 48, 64, 28, 28, 5, 5, 1, 1),
          makeSpec(4, 64, 64, 28, 28, 7, 7, 1, 1),
          makeSpec(4, 64, 64, 56, 56, 3, 3, 2, 2)}) {
        tune::AlgoChoice c = tune::selectAlgorithm(spec);
        EXPECT_EQ(c.kind, tune::AlgoKind::Decomposed) << spec.key();
        EXPECT_TRUE(tune::numericallySafe(c.m, 3)) << spec.key();
    }
    tune::AlgoChoice one =
        tune::selectAlgorithm(makeSpec(4, 64, 64, 28, 28, 1, 1, 1, 1));
    EXPECT_EQ(one.kind, tune::AlgoKind::Direct);
}

TEST(TunerSelection, MemoAnswersRepeatSelects)
{
    TunerGuard guard;
    const ConvSpec spec = makeSpec(4, 8, 8, 12, 12, 5, 5, 1, 1);
    tune::AlgoChoice first = tune::selectAlgorithm(spec);
    const tune::TunerStats s0 = tune::tunerStats();
    tune::AlgoChoice again = tune::selectAlgorithm(spec);
    const tune::TunerStats s1 = tune::tunerStats();
    EXPECT_EQ(s1.memoHits, s0.memoHits + 1);
    EXPECT_EQ(again.kind, first.kind);
    EXPECT_EQ(again.m, first.m);
}

// --------------------------------------------------- decomposition terms

TEST(Decomposition, TermCountsMatchTheDwmFormula)
{
    EXPECT_EQ(decomposeSpec(makeSpec(1, 1, 1, 12, 12, 5, 5, 1, 1)).size(),
              4u);
    EXPECT_EQ(decomposeSpec(makeSpec(1, 1, 1, 12, 12, 7, 7, 1, 1)).size(),
              9u);
    EXPECT_EQ(decomposeSpec(makeSpec(1, 1, 1, 13, 13, 3, 3, 2, 2)).size(),
              4u);
    EXPECT_EQ(decomposeSpec(makeSpec(1, 1, 1, 14, 14, 5, 5, 2, 2)).size(),
              4u);
    EXPECT_EQ(decomposeSpec(makeSpec(1, 1, 1, 11, 9, 5, 3, 1, 1)).size(),
              2u);
    EXPECT_TRUE(decompSupported(makeSpec(1, 1, 1, 12, 12, 11, 11, 3, 3)));
    EXPECT_FALSE(decompSupported(makeSpec(1, 1, 1, 12, 12, 13, 13, 1, 1)));
}

// ----------------------------------------------------- decomposed parity

struct DecompShape
{
    int batch, in_ch, out_ch, h, w, kh, kw, sh, sw, m;
};

class DecompParityP : public ::testing::TestWithParam<DecompShape>
{
};

/**
 * Forward through the decomposed plan must reproduce the generalized
 * direct oracle within the F(m,3) error budget, and must be bitwise
 * identical across thread counts and staged/fused inner execution
 * (per ISA — vector width changes the FP contraction order).
 */
TEST_P(DecompParityP, MatchesDirectOracleBitwiseAcrossSchedules)
{
    TunerGuard guard;
    const DecompShape p = GetParam();
    const ConvSpec spec = makeSpec(p.batch, p.in_ch, p.out_ch, p.h, p.w,
                                   p.kh, p.kw, p.sh, p.sw);
    ASSERT_TRUE(decompSupported(spec));

    Rng rng(99);
    Tensor x(p.batch, p.in_ch, p.h, p.w);
    Tensor w(p.out_ch, p.in_ch, p.kh, p.kw);
    x.fillUniform(rng);
    w.fillUniform(rng);
    const Tensor y_oracle = directConvForwardEx(
        x, w, p.sh, p.sw, spec.padHEff(), spec.padWEff());

    float scale = 0.0f;
    for (size_t i = 0; i < y_oracle.size(); ++i)
        scale = std::max(scale, std::fabs(y_oracle.data()[i]));
    const float tol =
        float(tune::winogradMaxRelError(p.m, 3)) * 10.0f * scale;

    for (mk::Isa isa : {mk::Isa::Scalar, mk::Isa::Auto}) {
        mk::setIsa(isa);
        WinoDecompPlan plan(spec, algoForTile(p.m));
        plan.setWeights(w);
        ASSERT_EQ(plan.terms(), int(decomposeSpec(spec).size()));

        setFusedMode(FusedMode::Off);
        ThreadPool::global().setThreadCount(1);
        Tensor y_ref(p.batch, p.out_ch, spec.outH(), spec.outW());
        plan.forwardInto(x, y_ref);
        EXPECT_LE(y_ref.maxAbsDiff(y_oracle), tol)
            << "isa " << mk::isaName(isa);

        Tensor y(p.batch, p.out_ch, spec.outH(), spec.outW());
        for (FusedMode fm : {FusedMode::Off, FusedMode::On}) {
            setFusedMode(fm);
            for (int threads : {1, 8}) {
                ThreadPool::global().setThreadCount(threads);
                y.fill(-1.0f); // poison: every element must be stored
                plan.forwardInto(x, y);
                EXPECT_EQ(y.maxAbsDiff(y_ref), 0.0f)
                    << "isa " << mk::isaName(isa) << " fused "
                    << fusedModeName(fm) << " threads " << threads;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecompParityP,
    ::testing::Values(DecompShape{2, 3, 4, 12, 12, 5, 5, 1, 1, 4},
                      DecompShape{1, 2, 3, 12, 12, 7, 7, 1, 1, 4},
                      DecompShape{2, 3, 4, 13, 13, 3, 3, 2, 2, 4},
                      DecompShape{1, 2, 3, 14, 14, 5, 5, 2, 2, 2},
                      DecompShape{1, 2, 3, 11, 9, 5, 3, 1, 1, 4},
                      DecompShape{2, 2, 3, 9, 10, 5, 5, 1, 1, 6}),
    [](const ::testing::TestParamInfo<DecompShape> &info) {
        const DecompShape &p = info.param;
        return "b" + std::to_string(p.batch) + "k" +
               std::to_string(p.kh) + "x" + std::to_string(p.kw) + "s" +
               std::to_string(p.sh) + "h" + std::to_string(p.h) + "w" +
               std::to_string(p.w) + "F" + std::to_string(p.m);
    });

// ---------------------------------------------------- on-disk tune cache

TEST(TunerCache, RoundTripsDecisionsAcrossProcessesAndRetunesNothing)
{
    TunerGuard guard;
    const std::string path =
        ::testing::TempDir() + "winomc_tuner_cache_test.txt";
    std::remove(path.c_str());
    tune::setTuneCachePath(path.c_str());
    tune::resetTunerForTest();

    const ConvSpec a = makeSpec(4, 8, 8, 12, 12, 5, 5, 1, 1);
    const ConvSpec b = makeSpec(4, 8, 8, 13, 13, 3, 3, 2, 2);
    const tune::TunerStats s0 = tune::tunerStats();
    const tune::AlgoChoice ca = tune::selectAlgorithm(a);
    const tune::AlgoChoice cb = tune::selectAlgorithm(b);
    EXPECT_FALSE(ca.fromCache);
    EXPECT_FALSE(cb.fromCache);
    const tune::TunerStats s1 = tune::tunerStats();
    EXPECT_EQ(s1.cacheMisses, s0.cacheMisses + 2);

    // "Second run": drop the memo and the loaded map, keep the file.
    tune::resetTunerForTest();
    const tune::AlgoChoice ca2 = tune::selectAlgorithm(a);
    const tune::AlgoChoice cb2 = tune::selectAlgorithm(b);
    const tune::TunerStats s2 = tune::tunerStats();
    EXPECT_TRUE(ca2.fromCache);
    EXPECT_TRUE(cb2.fromCache);
    EXPECT_EQ(s2.cacheHits, s1.cacheHits + 2);
    EXPECT_EQ(ca2.kind, ca.kind);
    EXPECT_EQ(ca2.m, ca.m);
    EXPECT_EQ(cb2.kind, cb.kind);
    EXPECT_EQ(cb2.m, cb.m);
    std::remove(path.c_str());
}

// -------------------------------------------------------- ConvMode::Auto

TEST(ConvLayerAuto, Plain3x3SelectsWinogradAndMatchesDirect)
{
    TunerGuard guard;
    Rng rng(7);
    nn::ConvLayer layer(8, 8, 3, 3, 1, 1, rng);
    EXPECT_EQ(layer.mode(), nn::ConvMode::Auto);
    EXPECT_EQ(layer.name(), "conv_auto");

    Tensor x(2, 8, 24, 24);
    x.fillUniform(rng);
    Tensor y = layer.forward(x, false);
    EXPECT_EQ(layer.autoChoice().kind, tune::AlgoKind::Winograd);
    EXPECT_EQ(layer.autoChoice().m, 4);

    const Tensor y_ref =
        directConvForwardEx(x, layer.spatialWeights(), 1, 1, 1, 1);
    float scale = 0.0f;
    for (size_t i = 0; i < y_ref.size(); ++i)
        scale = std::max(scale, std::fabs(y_ref.data()[i]));
    EXPECT_LE(y.maxAbsDiff(y_ref), 1e-4f * scale);
}

TEST(ConvLayerAuto, FiveByFiveRunsDecomposedAndTrains)
{
    TunerGuard guard;
    Rng rng(11);
    nn::ConvLayer layer(32, 32, 5, 5, 1, 1, rng);
    Tensor x(2, 32, 20, 20);
    x.fillUniform(rng);

    Tensor y = layer.forward(x, true);
    ASSERT_EQ(layer.autoChoice().kind, tune::AlgoKind::Decomposed);
    ASSERT_NE(layer.decomposedPlan(), nullptr);
    EXPECT_EQ(y.h(), 20);
    EXPECT_EQ(y.w(), 20);

    // Parity of the decomposed fast path against the direct oracle.
    const Tensor y_ref =
        directConvForwardEx(x, layer.spatialWeights(), 1, 1, 2, 2);
    float scale = 0.0f;
    for (size_t i = 0; i < y_ref.size(); ++i)
        scale = std::max(scale, std::fabs(y_ref.data()[i]));
    EXPECT_LE(y.maxAbsDiff(y_ref), 1e-3f * scale);

    // Gradients flow (direct adjoints) and the post-step forward uses
    // the re-split weights.
    Tensor dy(2, 32, 20, 20);
    dy.fillUniform(rng);
    Tensor dx = layer.backward(dy);
    EXPECT_EQ(dx.h(), 20);
    EXPECT_EQ(dx.w(), 20);
    const Tensor w_before = layer.spatialWeights();
    layer.step(0.05f);
    EXPECT_GT(layer.spatialWeights().maxAbsDiff(w_before), 0.0f);

    Tensor y2 = layer.forward(x, false);
    const Tensor y2_ref =
        directConvForwardEx(x, layer.spatialWeights(), 1, 1, 2, 2);
    EXPECT_LE(y2.maxAbsDiff(y2_ref), 1e-3f * scale);
}

TEST(ConvLayerAuto, StridedForwardWorksAndTrainingAsserts)
{
    TunerGuard guard;
    Rng rng(13);
    nn::ConvLayer layer(2, 3, 3, 3, 2, 2, rng);
    Tensor x(2, 2, 13, 13);
    x.fillUniform(rng);

    Tensor y = layer.forward(x, true);
    EXPECT_EQ(y.h(), 7);
    EXPECT_EQ(y.w(), 7);
    const Tensor y_ref =
        directConvForwardEx(x, layer.spatialWeights(), 2, 2, 1, 1);
    float scale = 0.0f;
    for (size_t i = 0; i < y_ref.size(); ++i)
        scale = std::max(scale, std::fabs(y_ref.data()[i]));
    EXPECT_LE(y.maxAbsDiff(y_ref), 1e-3f * scale);

    Tensor dy(2, 3, 7, 7);
    dy.fillUniform(rng);
    EXPECT_DEATH(layer.backward(dy), "unsupported");
}

TEST(ConvLayerAuto, SteadyStateTrainingAllocatesNothing)
{
    TunerGuard guard;
    Rng rng(17);
    nn::ConvLayer layer(32, 32, 5, 5, 1, 1, rng);
    Tensor x(2, 32, 20, 20);
    Tensor dy(2, 32, 20, 20);
    x.fillUniform(rng);
    dy.fillUniform(rng);

    auto iterate = [&] {
        (void)layer.forward(x, true);
        (void)layer.backward(dy);
        layer.step(0.01f);
    };
    iterate(); // warm-up: plan build, weight split, pool population
    iterate();
    const auto s0 = ws::Workspace::global().stats();
    for (int i = 0; i < 3; ++i)
        iterate();
    const auto s1 = ws::Workspace::global().stats();
    EXPECT_EQ(s1.freshAllocs, s0.freshAllocs)
        << "steady-state Auto training iterations must reuse pooled "
           "slabs only";
}

} // namespace
} // namespace winomc
