#include "nn/batchnorm.hh"

#include <algorithm>
#include <cmath>

#include "winograd/microkernel.hh"

namespace winomc::nn {

BatchNorm2d::BatchNorm2d(int channels_, float eps_, float momentum)
    : channels(channels_), eps(eps_), statMomentum(momentum),
      gamma_(size_t(channels_), 1.0f), beta_(size_t(channels_), 0.0f),
      dgamma(size_t(channels_), 0.0f), dbeta(size_t(channels_), 0.0f),
      running_mean(size_t(channels_), 0.0f),
      running_var(size_t(channels_), 1.0f),
      batch_mean(size_t(channels_), 0.0f),
      batch_inv_std(size_t(channels_), 1.0f)
{
    winomc_assert(channels_ > 0, "batchnorm needs channels");
}

Tensor
BatchNorm2d::forward(const Tensor &x, bool train)
{
    winomc_assert(x.c() == channels, "batchnorm channel mismatch");
    const int count = x.n() * x.h() * x.w();
    winomc_assert(count > 0, "empty batchnorm input");
    Tensor y(x.n(), x.c(), x.h(), x.w());
    if (train)
        xhat = Tensor(x.n(), x.c(), x.h(), x.w());

    for (int c = 0; c < channels; ++c) {
        float mean, inv_std;
        if (train) {
            double sum = 0.0, sum2 = 0.0;
            for (int b = 0; b < x.n(); ++b)
                for (int i = 0; i < x.h(); ++i)
                    for (int j = 0; j < x.w(); ++j) {
                        double v = x.at(b, c, i, j);
                        sum += v;
                        sum2 += v * v;
                    }
            mean = float(sum / count);
            float var = float(sum2 / count) - mean * mean;
            var = std::max(var, 0.0f);
            inv_std = 1.0f / std::sqrt(var + eps);

            running_mean[size_t(c)] =
                (1.0f - statMomentum) * running_mean[size_t(c)] +
                statMomentum * mean;
            running_var[size_t(c)] =
                (1.0f - statMomentum) * running_var[size_t(c)] +
                statMomentum * var;
            batch_mean[size_t(c)] = mean;
            batch_inv_std[size_t(c)] = inv_std;
        } else {
            mean = running_mean[size_t(c)];
            inv_std = 1.0f /
                      std::sqrt(running_var[size_t(c)] + eps);
        }

        for (int b = 0; b < x.n(); ++b) {
            for (int i = 0; i < x.h(); ++i) {
                for (int j = 0; j < x.w(); ++j) {
                    float xn = (x.at(b, c, i, j) - mean) * inv_std;
                    if (train)
                        xhat.at(b, c, i, j) = xn;
                    y.at(b, c, i, j) =
                        gamma_[size_t(c)] * xn + beta_[size_t(c)];
                }
            }
        }
    }
    return y;
}

Tensor
BatchNorm2d::backward(const Tensor &dy)
{
    winomc_assert(dy.sameShape(xhat), "batchnorm backward shape");
    haveGrad = true;
    const int count = dy.n() * dy.h() * dy.w();
    Tensor dx(dy.n(), dy.c(), dy.h(), dy.w());

    for (int c = 0; c < channels; ++c) {
        // dgamma = sum dy * xhat; dbeta = sum dy.
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (int b = 0; b < dy.n(); ++b)
            for (int i = 0; i < dy.h(); ++i)
                for (int j = 0; j < dy.w(); ++j) {
                    double g = dy.at(b, c, i, j);
                    sum_dy += g;
                    sum_dy_xhat += g * xhat.at(b, c, i, j);
                }
        dgamma[size_t(c)] += float(sum_dy_xhat);
        dbeta[size_t(c)] += float(sum_dy);

        // dx = gamma * inv_std / N *
        //      (N dy - sum dy - xhat * sum(dy * xhat)).
        const float scale = gamma_[size_t(c)] *
                            batch_inv_std[size_t(c)] / float(count);
        for (int b = 0; b < dy.n(); ++b)
            for (int i = 0; i < dy.h(); ++i)
                for (int j = 0; j < dy.w(); ++j)
                    dx.at(b, c, i, j) =
                        scale * (float(count) * dy.at(b, c, i, j) -
                                 float(sum_dy) -
                                 xhat.at(b, c, i, j) *
                                     float(sum_dy_xhat));
    }
    return dx;
}

void
BatchNorm2d::step(float lr)
{
    if (!haveGrad)
        return;
    haveGrad = false;
    const mk::MicroKernels &K = mk::kernels();
    K.axpy(gamma_.data(), -lr, dgamma.data(), channels);
    K.axpy(beta_.data(), -lr, dbeta.data(), channels);
    std::fill(dgamma.begin(), dgamma.end(), 0.0f);
    std::fill(dbeta.begin(), dbeta.end(), 0.0f);
}

} // namespace winomc::nn
