/**
 * @file
 * Cycle-stepped flit-level network: routers wired by a Topology, flit
 * and credit propagation with per-hop SerDes latency, packet injection /
 * ejection with latency statistics.
 *
 * Link widths follow Table III: a full-width link moves 30 bytes per
 * 1 GHz cycle (16 lanes x 15 Gbps), a narrow link 10 bytes per cycle
 * (8 lanes x 10 Gbps); a packet of B bytes therefore serializes into
 * ceil(B / flit_bytes) flits.
 */

#ifndef WINOMC_NOC_NETWORK_HH
#define WINOMC_NOC_NETWORK_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "noc/router.hh"
#include "noc/topology.hh"

namespace winomc::noc {

struct NocConfig
{
    int vcs = 2;
    int bufferDepth = 32;  ///< flits per input VC (covers credit RTT)
    /** Cycles from switch grant to downstream buffer: router pipeline
     *  (2) + serialization + deserialization (5 ns, Table III). */
    int hopLatency = 7;
    int flitBytes = 30;    ///< link phit per cycle (full-width default)
    /** Parallel injection channels from the terminal (the NDP feeds
     *  its router through the on-chip crossbar, so multi-port routers
     *  can accept several flits per cycle). */
    int injectionLanes = 1;
};

class Network
{
  public:
    Network(std::unique_ptr<Topology> topo, const NocConfig &cfg);

    /**
     * Offer a packet to node `src`'s source queue. Returns the packet
     * id. Size is given in bytes and converted to flits.
     */
    int offerPacket(int src, int dst, int bytes);

    /** Advance one cycle. */
    void step();
    /** Run `cycles` cycles. */
    void run(int cycles);
    /** Step until all offered packets eject (or `max_cycles` pass);
     *  returns true if drained. */
    bool drain(int max_cycles);

    Tick now() const { return cycle; }
    const Topology &topology() const { return *topo; }
    const NocConfig &config() const { return cfg; }

    const PacketInfo &packet(int id) const { return packets[size_t(id)]; }
    size_t packetCount() const { return packets.size(); }
    uint64_t ejectedCount() const { return ejected; }

    /** Packet latency (inject -> eject) of ejected packets. */
    const Accumulator &latencyStats() const { return latency; }
    /** Flits ejected per node per cycle since the last resetStats(). */
    double acceptedFlitRate() const;
    void resetStats();

    /** Flits currently buffered anywhere (0 when idle). */
    size_t flitsInFlight() const;

  private:
    struct Arrival
    {
        Tick when;
        int node, port, vc;
        bool is_credit;
        Flit flit; ///< valid when !is_credit
    };

    void deliverArrivals();
    void switchAllocation();
    void injection();

    std::unique_ptr<Topology> topo;
    NocConfig cfg;
    Tick cycle = 0;

    std::vector<Router> routers;
    std::vector<PacketInfo> packets;
    /** Per-(node, lane) source queues of un-injected flits. */
    std::vector<std::vector<std::deque<Flit>>> sourceQueues;
    uint64_t nextLane = 0;
    /** In-flight flits/credits sorted into per-cycle buckets. */
    std::deque<std::vector<Arrival>> wheel; ///< wheel[0] = this cycle

    Accumulator latency;
    uint64_t ejected = 0;
    uint64_t ejectedFlits = 0;
    Tick statsSince = 0;
};

} // namespace winomc::noc

#endif // WINOMC_NOC_NETWORK_HH
