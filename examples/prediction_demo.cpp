/**
 * @file
 * Activation prediction walkthrough (Section V): quantize the Winograd-
 * domain output tiles of a real (trained) convolution, propagate the
 * conservative error bound through the inverse transform, and verify on
 * every tile that a neuron predicted dead is dead - then show what the
 * prediction saves on the wire.
 *
 * Usage: prediction_demo [levels] [regions]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/table.hh"
#include "nn/basic_layers.hh"
#include "nn/conv_layer.hh"
#include "nn/dataset.hh"
#include "nn/trainer.hh"
#include "quant/predict.hh"
#include "winograd/algo.hh"

using namespace winomc;
using namespace winomc::quant;

int
main(int argc, char **argv)
{
    const int levels = argc > 1 ? std::atoi(argv[1]) : 32;
    const int regions = argc > 2 ? std::atoi(argv[2]) : 4;
    const WinogradAlgo &algo = algoF2x2_3x3();

    // Train a small CNN so the tiles are realistic.
    Rng rng(3);
    nn::Dataset train_set = nn::makeShapeDataset(192, 16, 3, rng);
    nn::Dataset val_set = nn::makeShapeDataset(64, 16, 3, rng);
    nn::Sequential net;
    net.add(std::make_unique<nn::ConvLayer>(
        1, 8, 3, nn::ConvMode::WinogradLayer, algo, rng));
    net.add(std::make_unique<nn::ReLU>());
    auto conv = std::make_unique<nn::ConvLayer>(
        8, 8, 3, nn::ConvMode::WinogradLayer, algo, rng);
    nn::ConvLayer *probe = conv.get();
    net.add(std::move(conv));
    net.add(std::make_unique<nn::ReLU>());
    net.add(std::make_unique<nn::GlobalAvgPool>());
    net.add(std::make_unique<nn::Dense>(8, 3, rng));

    nn::TrainConfig cfg;
    cfg.epochs = 3;
    cfg.batchSize = 16;
    nn::train(net, train_set, val_set, cfg, rng);

    std::vector<int> labels;
    Tensor xb = val_set.batch(0, 32, labels);
    net.forward(xb, true);
    const WinoTiles &tiles = probe->lastOutputTiles();

    std::printf("probing %d output tiles of a trained conv layer\n",
                tiles.channels() * tiles.batch() * tiles.tiles());

    Table t("prediction with " + std::to_string(levels) + " levels, " +
            std::to_string(regions) + " regions");
    t.header({"flow", "actual dead", "predicted dead", "false neg",
              "wire bytes/tile", "vs raw"});
    for (PredictMode mode : {PredictMode::TwoD, PredictMode::OneD}) {
        double sigma = ActivationPredictor::wireSigma(tiles, algo, mode);
        NonUniformQuantizer qz(levels, regions, sigma);
        ActivationPredictor pred(algo, qz, mode);
        PredictStats st = pred.run(tiles);

        bool two_d = mode == PredictMode::TwoD;
        double skip = two_d ? st.tileDeadPredictedRatio()
                            : st.lineDeadPredictedRatio();
        // Raw gather: alpha^2 FP32 values per tile (2D); the 1D flow
        // sends alpha * m transformed values instead.
        double raw = two_d ? 16.0 * 4.0 : 8.0 * 4.0;
        double wire = 16.0 * qz.bits() / 8.0 + (1.0 - skip) * raw;
        t.row()
            .cell(two_d ? "2D predict" : "1D predict")
            .cell(two_d ? st.tileDeadActualRatio()
                        : st.lineDeadActualRatio(), 3)
            .cell(skip, 3)
            .cell(int64_t(st.falseNegatives))
            .cell(wire, 1)
            .cell(wire / (16.0 * 4.0), 2);
    }
    t.print();
    std::printf("a false-negative count of zero is the paper's "
                "no-accuracy-loss guarantee.\n");
    return 0;
}
