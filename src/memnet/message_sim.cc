#include "memnet/message_sim.hh"

#include <algorithm>
#include <functional>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

namespace winomc::memnet {

namespace {

/** Seconds -> picosecond ticks (event kernel granularity). */
Tick
toTicks(double sec)
{
    return Tick(sec * 1e12 + 0.5);
}

double
toSec(Tick t)
{
    return double(t) * 1e-12;
}

} // namespace

double
MessageSimStats::linkUtilization(int node, int port) const
{
    if (makespanSec <= 0.0)
        return 0.0;
    return linkBusySec[size_t(node) * size_t(ports) + size_t(port)] /
           makespanSec;
}

double
MessageSimStats::maxLinkUtilization() const
{
    double best = 0.0;
    for (int node = 0; node < nodes; ++node)
        for (int port = 0; port < ports; ++port)
            if (wired[size_t(node) * size_t(ports) + size_t(port)])
                best = std::max(best, linkUtilization(node, port));
    return best;
}

double
MessageSimStats::meanLinkUtilization() const
{
    double sum = 0.0;
    int n_wired = 0;
    for (int node = 0; node < nodes; ++node)
        for (int port = 0; port < ports; ++port)
            if (wired[size_t(node) * size_t(ports) + size_t(port)]) {
                sum += linkUtilization(node, port);
                ++n_wired;
            }
    return n_wired ? sum / n_wired : 0.0;
}

void
MessageSimStats::exportMetrics(const std::string &prefix) const
{
    if (!metrics::enabled())
        return;
    metrics::counterAdd((prefix + ".bytes").c_str(), totalBytes);
    metrics::counterAdd((prefix + ".hops").c_str(), double(hops));
    metrics::gaugeSet((prefix + ".makespan_sec").c_str(), makespanSec);
    metrics::gaugeSet((prefix + ".link_util_max").c_str(),
                      maxLinkUtilization());
    metrics::gaugeSet((prefix + ".link_util_mean").c_str(),
                      meanLinkUtilization());
    const std::string util = prefix + ".link_utilization";
    for (int node = 0; node < nodes; ++node)
        for (int port = 0; port < ports; ++port)
            if (wired[size_t(node) * size_t(ports) + size_t(port)])
                metrics::histogramAdd(util.c_str(),
                                      linkUtilization(node, port), 0.0,
                                      1.0, 20);
}

double
simulateMessages(const noc::Topology &topo, const LinkSpec &link,
                 std::vector<Message> &messages,
                 MessageSimStats *stats)
{
    const int ports = topo.ports();
    // linkFree[node * ports + port]: tick the directed link frees up.
    std::vector<Tick> link_free(size_t(topo.nodes()) * ports, 0);

    if (stats) {
        *stats = MessageSimStats();
        stats->nodes = topo.nodes();
        stats->ports = ports;
        stats->linkBusySec.assign(link_free.size(), 0.0);
        stats->wired.assign(link_free.size(), 0);
        for (int node = 0; node < topo.nodes(); ++node)
            for (int port = 0; port < ports; ++port)
                if (topo.neighbor(node, port) >= 0)
                    stats->wired[size_t(node) * ports + port] = 1;
    }
    // Replay link occupations onto their own trace timeline: one track
    // (tid) per directed link, virtual microseconds.
    const bool tracing = trace::enabled();
    const int trace_pid = tracing ? trace::allocSimPid() : 0;
    if (tracing)
        trace::namePid(trace_pid,
                       "memnet:" + std::string(topo.name()));

    sim::EventQueue eq;
    Tick makespan = 0;
    const Tick hop_lat = toTicks(link.hopLatencySec);

    // One hop of one message: occupy the link for serialization time,
    // then arrive at the next node after the hop latency.
    std::function<void(size_t, int)> advance = [&](size_t mi, int node) {
        Message &m = messages[mi];
        if (node == m.dst) {
            m.finish = toSec(eq.now());
            makespan = std::max(makespan, eq.now());
            return;
        }
        int port = topo.route(node, m.dst);
        Tick &free_at = link_free[size_t(node) * ports + port];
        Tick start = std::max(eq.now(), free_at);
        Tick ser = toTicks(m.bytes / link.bandwidth);
        free_at = start + ser;
        if (stats) {
            stats->linkBusySec[size_t(node) * ports + port] +=
                toSec(ser);
            stats->totalBytes += m.bytes;
            ++stats->hops;
        }
        if (tracing) {
            std::string name = "m";
            name += std::to_string(mi);
            name += ' ';
            name += std::to_string(m.src);
            name += "->";
            name += std::to_string(m.dst);
            trace::emitCompleteAt(name, "memnet", toSec(start) * 1e6,
                                  toSec(ser) * 1e6, trace_pid,
                                  node * ports + port);
        }
        int next = topo.neighbor(node, port);
        eq.schedule(start + ser + hop_lat,
                    [&advance, mi, next] { advance(mi, next); });
    };

    for (size_t mi = 0; mi < messages.size(); ++mi) {
        winomc_assert(messages[mi].src != messages[mi].dst,
                      "message to self");
        winomc_assert(messages[mi].bytes > 0, "empty message");
        int src = messages[mi].src;
        eq.schedule(toTicks(messages[mi].start),
                    [&advance, mi, src] { advance(mi, src); });
    }
    eq.run();
    if (stats)
        stats->makespanSec = toSec(makespan);
    return toSec(makespan);
}

double
simulateAllToAll(const noc::Topology &topo, const LinkSpec &link,
                 double bytes_per_pair)
{
    std::vector<Message> msgs;
    const int n = topo.nodes();
    // The communication engines packetize bulk transfers (Section VI-C);
    // split each pairwise flow into chunks and interleave sources and
    // destinations round-robin, which lets multi-hop flows pipeline.
    constexpr int kChunks = 8;
    const double chunk = bytes_per_pair / kChunks;
    for (int c = 0; c < kChunks; ++c)
        for (int k = 1; k < n; ++k)
            for (int s = 0; s < n; ++s)
                msgs.push_back(Message{s, (s + k) % n, chunk, 0.0, -1.0});
    return simulateMessages(topo, link, msgs);
}

} // namespace winomc::memnet
