/**
 * @file
 * Figure 16: normalized performance of the Table IV configurations
 * averaged (geomean) over the five layers, for 3x3 weights
 * (F(2x2,3x3) / F(4x4,3x3)) and 5x5 weights (F(2x2,5x5)).
 *
 * The paper reports the w_mp++ advantage growing from 2.74x to 3.03x
 * at 5x5 because MPT's weight-gradient reduction deepens with |w|; in
 * this reproduction the collective advantage indeed grows, but the
 * larger 5x5 tile volume (alpha^2: 16 -> 36 for MPT) offsets it in the
 * end-to-end number - see EXPERIMENTS.md.
 */

#include <cmath>
#include <cstdio>

#include "common/table.hh"
#include "mpt/layer_sim.hh"
#include "workloads/layers.hh"

using namespace winomc;
using namespace winomc::mpt;

namespace {

double
geomeanSpeedup(const std::vector<ConvSpec> &layers, Strategy s,
               const SystemParams &sp)
{
    double log_sum = 0.0;
    for (const auto &spec : layers) {
        double base = simulateLayer(spec, Strategy::WinoDP, sp)
                          .totalSeconds();
        double t = simulateLayer(spec, s, sp).totalSeconds();
        log_sum += std::log(base / t);
    }
    return std::exp(log_sum / double(layers.size()));
}

} // namespace

int
main()
{
    std::printf("Figure 16: 3x3 vs 5x5 weights, geomean speedup over "
                "w_dp across the five layers (256 NDP workers)\n\n");
    SystemParams sp;
    auto l3 = workloads::tableTwoLayers();
    auto l5 = workloads::tableTwoLayers5x5();

    Table t("geomean speedup vs w_dp");
    t.header({"config", "3x3", "5x5"});
    for (Strategy s : {Strategy::DirectDP, Strategy::WinoMPT,
                       Strategy::WinoMPTPredict,
                       Strategy::WinoMPTPredictDyn}) {
        t.row()
            .cell(strategyName(s))
            .cell(geomeanSpeedup(l3, s, sp), 2)
            .cell(geomeanSpeedup(l5, s, sp), 2);
    }
    t.print();

    // The mechanism the paper credits: the weight-collective advantage
    // of MPT over w_dp grows with the filter size.
    auto shape = memnet::ClusterShape::groups16(sp.workers);
    auto coll = [&](const ConvSpec &spec) {
        double dp = simulateLayer(spec, Strategy::WinoDP, sp)
                        .collectiveSeconds;
        double mp = simulateLayerWithShape(spec,
                                           Strategy::WinoMPTPredict, sp,
                                           shape).collectiveSeconds;
        return dp / mp;
    };
    std::printf("\nweight-collective advantage (w_dp coll time / "
                "w_mp+(16Ng) coll time), Late-B: 3x3 %.1fx -> 5x5 "
                "%.1fx\n",
                coll(l3[4]), coll(l5[4]));
    std::printf("paper: w_mp++ overall 2.74x (3x3) -> 3.03x (5x5)\n");
    return 0;
}
