#include "serve/engine.hh"

#include <algorithm>
#include <string>

#include "common/env.hh"
#include "common/exposition.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "nn/conv_layer.hh"

namespace winomc::serve {

namespace {

constexpr long long kMaxBatchCeiling = 4096;
constexpr long long kMaxDelayCeilingUs = 10'000'000; // 10 s

// Histogram layouts (fixed at registration; adds must match).
constexpr double kLatencyLoUs = 0.0;
constexpr double kLatencyHiUs = 1e5; // 100 ms; beyond -> overflow bucket
constexpr int kLatencyBuckets = 100;

/** Re-point every ConvLayer under `m` (recursing through Sequential)
 *  at `src` (nullptr restores the layers' own plan pools). */
void
attachPlanSource(nn::Module &m, PlanSource *src)
{
    if (auto *conv = dynamic_cast<nn::ConvLayer *>(&m)) {
        conv->setPlanSource(src);
        return;
    }
    if (auto *seq = dynamic_cast<nn::Sequential *>(&m)) {
        for (std::size_t i = 0; i < seq->size(); ++i)
            attachPlanSource(seq->child(i), src);
    }
}

int
resolveMaxBatch(const EngineConfig &cfg)
{
    if (cfg.maxBatch > 0)
        return cfg.maxBatch;
    return int(env::envPositiveInt("WINOMC_SERVE_MAX_BATCH",
                                   kMaxBatchCeiling, 8));
}

long long
resolveMaxDelayUs(const EngineConfig &cfg)
{
    if (cfg.maxDelayUs >= 0)
        return cfg.maxDelayUs;
    return env::envPositiveInt("WINOMC_SERVE_MAX_DELAY_US",
                               kMaxDelayCeilingUs, 1000);
}

} // namespace

Engine::Engine(nn::Module &model_, const EngineConfig &cfg)
    : model(model_),
      ownCache(cfg.sharedCache ? nullptr
                               : std::make_unique<PlanCache>()),
      cache(cfg.sharedCache ? cfg.sharedCache : ownCache.get()),
      maxB(resolveMaxBatch(cfg)),
      delayUs(resolveMaxDelayUs(cfg)),
      queue(cfg.queueCapacity ? cfg.queueCapacity
                              : std::size_t(4) * std::size_t(maxB))
{
    attachPlanSource(model, cache);
    // A long-lived service is the natural scrape target: bring up the
    // WINOMC_STATS_PORT listener if configured (no-op otherwise, or
    // when an earlier engine already owns it).
    exposition::startFromEnv();
    // Eager registration: a metrics dump taken before the first
    // request still lists the serving distributions (empty -> "-").
    metrics::gaugeSet("serve.queue_depth", 0.0);
    metrics::histogramRegister("serve.batch_size", 0.0,
                               double(maxB) + 1.0,
                               std::min(maxB + 1, 128));
    metrics::histogramRegister("serve.latency_us", kLatencyLoUs,
                               kLatencyHiUs, kLatencyBuckets);
    worker = std::thread(&Engine::run, this);
}

Engine::~Engine()
{
    stop();
}

std::future<Tensor>
Engine::submit(Tensor image)
{
    winomc_assert(image.n() == 1,
                  "Engine::submit takes single images, got batch ",
                  image.n());
    Request r;
    r.x = std::move(image);
    r.id = nextId.fetch_add(1, std::memory_order_relaxed);
    r.enqueued = std::chrono::steady_clock::now();
    std::future<Tensor> fut = r.done.get_future();
    metrics::counterAdd("serve.requests");
    const bool accepted = queue.push(std::move(r));
    winomc_assert(accepted, "Engine::submit after stop()");
    return fut;
}

void
Engine::warmup(int c, int h, int w)
{
    for (int n = 1; n <= maxB; ++n) {
        Tensor x(n, c, h, w);
        model.forward(x, false);
    }
}

void
Engine::stop()
{
    if (stopped)
        return;
    stopped = true;
    queue.close();
    worker.join();
    // Hand the layers' active plans back to the cache and restore
    // their private pools, so the model outlives the engine safely.
    attachPlanSource(model, nullptr);
}

void
Engine::run()
{
    while (true) {
        std::vector<Request> batch = queue.popBatch(
            maxB, std::chrono::microseconds(delayUs));
        if (batch.empty())
            return; // closed and drained
        dispatch(batch);
    }
}

void
Engine::dispatch(std::vector<Request> &batch)
{
    const int n = int(batch.size());
    const std::uint64_t seq = ++batchSeq; // batcher thread only
    const bool tracing = trace::enabled();
    const std::string seqStr = tracing ? std::to_string(seq) : "";
    const double tBatch0 = tracing ? trace::nowUs() : 0.0;

    const Tensor &head = batch[0].x;
    const std::size_t img = std::size_t(head.c()) * head.h() * head.w();
    batchX.reshape(n, head.c(), head.h(), head.w());
    for (int i = 0; i < n; ++i)
        std::copy(batch[std::size_t(i)].x.data(),
                  batch[std::size_t(i)].x.data() + img,
                  batchX.data() + std::size_t(i) * img);
    const double tAssembled = tracing ? trace::nowUs() : 0.0;

    Tensor y = model.forward(batchX, false);
    const double tForward = tracing ? trace::nowUs() : 0.0;

    const std::size_t out = std::size_t(y.c()) * y.h() * y.w();
    const auto now = std::chrono::steady_clock::now();
    const double nowUs = tracing ? trace::nowUs() : 0.0;
    for (int i = 0; i < n; ++i) {
        Request &r = batch[std::size_t(i)];
        Tensor yi(1, y.c(), y.h(), y.w());
        std::copy(y.data() + std::size_t(i) * out,
                  y.data() + std::size_t(i + 1) * out, yi.data());
        const double us = std::chrono::duration<double, std::micro>(
                              now - r.enqueued)
                              .count();
        if (metrics::enabled())
            metrics::histogramAddExemplar("serve.latency_us", us,
                                          kLatencyLoUs, kLatencyHiUs,
                                          kLatencyBuckets, r.id);
        slo.observe(us);
        if (tracing)
            // Queue-to-demux span of this request, linked to the
            // batch it rode in (and to scrape exemplars) by trace id.
            trace::emitCompleteArgs(
                "serve.request", "serve", nowUs - us, us,
                {{"trace_id", std::to_string(r.id)},
                 {"batch", seqStr}});
        r.done.set_value(std::move(yi));
    }
    if (tracing) {
        const double tDemuxed = trace::nowUs();
        trace::emitCompleteArgs("serve.batch.assemble", "serve",
                                tBatch0, tAssembled - tBatch0,
                                {{"batch", seqStr}});
        trace::emitCompleteArgs("serve.batch.forward", "serve",
                                tAssembled, tForward - tAssembled,
                                {{"batch", seqStr}});
        trace::emitCompleteArgs("serve.batch.demux", "serve", tForward,
                                tDemuxed - tForward,
                                {{"batch", seqStr}});
        std::string ids;
        for (int i = 0; i < n; ++i) {
            if (i)
                ids += ",";
            ids += std::to_string(batch[std::size_t(i)].id);
        }
        trace::emitCompleteArgs("serve.batch", "serve", tBatch0,
                                tDemuxed - tBatch0,
                                {{"batch", seqStr},
                                 {"n", std::to_string(n)},
                                 {"trace_ids", ids}});
    }
    slo.evaluate();
    nServed.fetch_add(std::uint64_t(n), std::memory_order_relaxed);
    metrics::counterAdd("serve.batches");
    metrics::histogramAdd("serve.batch_size", double(n), 0.0,
                          double(maxB) + 1.0, std::min(maxB + 1, 128));
    metrics::gaugeSet("serve.queue_depth", double(queue.depth()));
}

} // namespace winomc::serve
