# Empty dependencies file for fig01_compute_vs_access.
# This may be replaced when dependencies are built.
