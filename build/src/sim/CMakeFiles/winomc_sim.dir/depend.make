# Empty dependencies file for winomc_sim.
# This may be replaced when dependencies are built.
