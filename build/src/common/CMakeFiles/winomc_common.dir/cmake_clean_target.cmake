file(REMOVE_RECURSE
  "libwinomc_common.a"
)
