file(REMOVE_RECURSE
  "CMakeFiles/fig17_scaling.dir/fig17_scaling.cpp.o"
  "CMakeFiles/fig17_scaling.dir/fig17_scaling.cpp.o.d"
  "fig17_scaling"
  "fig17_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
