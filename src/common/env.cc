#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace winomc::env {

long long
parsePositiveInt(const char *knob, const char *str, long long maxValue)
{
    if (!str || !*str)
        return 0;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(str, &end, 10);
    while (end && std::isspace(static_cast<unsigned char>(*end)))
        ++end;
    if (!end || end == str || *end != '\0') {
        winomc_warn("ignoring unparsable ", knob, " '", str, "'");
        return 0;
    }
    if (v <= 0) {
        winomc_warn("ignoring non-positive ", knob, " '", str, "'");
        return 0;
    }
    if (v > maxValue || errno == ERANGE) {
        winomc_warn(knob, " '", str, "' clamped to ", maxValue);
        return maxValue;
    }
    return v;
}

long long
envPositiveInt(const char *knob, long long maxValue, long long fallback)
{
    long long v = parsePositiveInt(knob, std::getenv(knob), maxValue);
    return v ? v : fallback;
}

} // namespace winomc::env
