#include "common/logging.hh"

#include <cstdlib>

namespace winomc {

namespace {
int g_log_level = 2;
} // namespace

void
setLogLevel(int level)
{
    g_log_level = level;
}

int
logLevel()
{
    return g_log_level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (g_log_level >= 1)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_log_level >= 2)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace winomc
