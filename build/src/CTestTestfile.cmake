# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("winograd")
subdirs("nn")
subdirs("quant")
subdirs("sim")
subdirs("noc")
subdirs("ndp")
subdirs("energy")
subdirs("memnet")
subdirs("workloads")
subdirs("mpt")
subdirs("gpu")
