# Empty dependencies file for winomc_mpt.
# This may be replaced when dependencies are built.
