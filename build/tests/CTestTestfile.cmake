# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/winograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/quant_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/noc_test[1]_include.cmake")
include("/root/repo/build/tests/ndp_test[1]_include.cmake")
include("/root/repo/build/tests/memnet_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/mpt_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
