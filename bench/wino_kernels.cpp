/**
 * @file
 * google-benchmark timings of the numeric Winograd kernels against
 * direct convolution - the host-side counterpart of the Fig 1
 * compute-reduction story, measured on real code rather than the
 * analytic model.
 *
 * The elementwise / transform kernels and the end-to-end pipeline also
 * sweep the execution-engine thread count (1/2/4/hardware max) so the
 * scaling of the blocked GEMM path is tracked release to release.
 *
 * With WINOMC_METRICS=BENCH_wino.json the run additionally dumps the
 * per-stage timer registry (wino.xform.*, wino.ew.*) as a reproducible
 * JSON artifact; WINOMC_TRACE=wino.trace.json captures the spans for
 * chrome://tracing / Perfetto.
 *
 * --json <path> writes a compact baseline artifact: ms per kernel plus
 * the workspace traffic per iteration (fresh heap bytes and slab
 * acquires), so allocation regressions in the hot path are as visible
 * as time regressions.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/trace.hh"
#include "tensor/workspace.hh"
#include "winograd/algo.hh"
#include "winograd/conv.hh"

using namespace winomc;

namespace {

/**
 * Brackets a benchmark's timing loop with workspace-counter snapshots
 * and reports the per-iteration allocation traffic as user counters
 * (picked up by the console table and the --json artifact).
 */
struct WsProbe
{
    ws::Stats s0 = ws::Workspace::global().stats();

    void
    report(benchmark::State &state) const
    {
        const ws::Stats s1 = ws::Workspace::global().stats();
        const double iters = double(std::max<int64_t>(
            state.iterations(), 1));
        state.counters["ws_fresh_bytes_per_iter"] =
            double(s1.freshBytes - s0.freshBytes) / iters;
        state.counters["ws_acquires_per_iter"] =
            double((s1.freshAllocs + s1.reuses) -
                   (s0.freshAllocs + s0.reuses)) /
            iters;
    }
};

struct Shapes
{
    int batch, ch, hw;
};

Shapes
shapeFor(int idx)
{
    switch (idx) {
      case 0:
        return {1, 16, 32};
      case 1:
        return {2, 32, 16};
      default:
        return {4, 8, 24};
    }
}

/** Thread sweep 1/2/4/max, deduplicated for small machines. */
void
threadArgs(benchmark::internal::Benchmark *b)
{
    b->ArgName("threads");
    std::vector<int> counts = {1, 2, 4, defaultThreadCount()};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());
    for (int c : counts)
        b->Arg(c);
}

void
BM_DirectConv(benchmark::State &state)
{
    Shapes s = shapeFor(int(state.range(0)));
    Rng rng(1);
    Tensor x(s.batch, s.ch, s.hw, s.hw);
    Tensor w(s.ch, s.ch, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(directConvForward(x, w));
    probe.report(state);
    state.SetItemsProcessed(int64_t(state.iterations()) * s.batch *
                            s.ch * s.ch * s.hw * s.hw * 9);
}
BENCHMARK(BM_DirectConv)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_WinogradConvF2(benchmark::State &state)
{
    Shapes s = shapeFor(int(state.range(0)));
    Rng rng(1);
    Tensor x(s.batch, s.ch, s.hw, s.hw);
    Tensor w(s.ch, s.ch, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    const auto &algo = algoF2x2_3x3();
    WinoWeights W = transformWeights(w, algo);
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(winogradForward(x, W, algo));
    probe.report(state);
    state.SetItemsProcessed(int64_t(state.iterations()) * s.batch *
                            s.ch * s.ch * s.hw * s.hw * 9);
}
BENCHMARK(BM_WinogradConvF2)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_WinogradConvF4(benchmark::State &state)
{
    Shapes s = shapeFor(int(state.range(0)));
    Rng rng(1);
    Tensor x(s.batch, s.ch, s.hw, s.hw);
    Tensor w(s.ch, s.ch, 3, 3);
    x.fillUniform(rng);
    w.fillUniform(rng);
    const auto &algo = algoF4x4_3x3();
    WinoWeights W = transformWeights(w, algo);
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(winogradForward(x, W, algo));
    probe.report(state);
    state.SetItemsProcessed(int64_t(state.iterations()) * s.batch *
                            s.ch * s.ch * s.hw * s.hw * 9);
}
BENCHMARK(BM_WinogradConvF4)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------
// Threaded kernel benchmarks. Largest shape: batch 8, 64 -> 64
// channels, 32x32 feature maps, F(4x4, 3x3); batch*tiles = 512 per uv.
// -------------------------------------------------------------------

struct ElementwiseFixture
{
    ElementwiseFixture()
    {
        Rng rng(1);
        Tensor x(8, 64, 32, 32);
        Tensor w(64, 64, 3, 3);
        x.fillUniform(rng);
        w.fillUniform(rng);
        const auto &algo = algoF4x4_3x3();
        W = transformWeights(w, algo);
        X = transformInput(x, algo);
        dY = inverseTransformAdjoint(x, algo);
    }

    WinoWeights W;
    WinoTiles X, dY;
};

ElementwiseFixture &
elementwiseFixture()
{
    static ElementwiseFixture f;
    return f;
}

void
BM_ElementwiseForward(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(elementwiseForward(f.X, f.W));
    probe.report(state);
    // 2 flops per (uv, j, i, k) MAC.
    state.SetItemsProcessed(int64_t(state.iterations()) * f.X.uvCount() *
                            f.W.outChannels() * f.W.inChannels() *
                            f.X.batch() * f.X.tiles() * 2);
}
BENCHMARK(BM_ElementwiseForward)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_ElementwiseBackwardData(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(elementwiseBackwardData(f.dY, f.W));
    probe.report(state);
    state.SetItemsProcessed(int64_t(state.iterations()) * f.X.uvCount() *
                            f.W.outChannels() * f.W.inChannels() *
                            f.X.batch() * f.X.tiles() * 2);
}
BENCHMARK(BM_ElementwiseBackwardData)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_ElementwiseGradWeights(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(elementwiseGradWeights(f.dY, f.X));
    probe.report(state);
    state.SetItemsProcessed(int64_t(state.iterations()) * f.X.uvCount() *
                            f.W.outChannels() * f.W.inChannels() *
                            f.X.batch() * f.X.tiles() * 2);
}
BENCHMARK(BM_ElementwiseGradWeights)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_InputTransform(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    Rng rng(1);
    Tensor x(2, 32, 32, 32);
    x.fillUniform(rng);
    const auto &algo = algoF2x2_3x3();
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(transformInput(x, algo));
    probe.report(state);
}
BENCHMARK(BM_InputTransform)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_InverseTransform(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    auto &f = elementwiseFixture();
    const auto &algo = algoF4x4_3x3();
    WinoTiles Y = elementwiseForward(f.X, f.W);
    WsProbe probe;
    for (auto _ : state)
        benchmark::DoNotOptimize(inverseTransform(Y, algo, 32, 32));
    probe.report(state);
}
BENCHMARK(BM_InverseTransform)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

/**
 * One full training step of a Winograd layer: forward, backward-data,
 * and Winograd-domain weight gradient. The single end-to-end number
 * future PRs track.
 */
void
BM_WinoEndToEnd(benchmark::State &state)
{
    ThreadPool::global().setThreadCount(int(state.range(0)));
    Rng rng(1);
    const auto &algo = algoF4x4_3x3();
    Tensor x(4, 32, 32, 32);
    Tensor w(32, 32, 3, 3);
    Tensor dy(4, 32, 32, 32);
    x.fillUniform(rng);
    w.fillUniform(rng);
    dy.fillUniform(rng);
    WinoWeights W = transformWeights(w, algo);
    WsProbe probe;
    for (auto _ : state) {
        Tensor y = winogradForward(x, W, algo);
        Tensor dx = winogradBackwardData(dy, W, algo, 32, 32);
        WinoWeights dW = winogradGradWeights(x, dy, algo);
        benchmark::DoNotOptimize(y);
        benchmark::DoNotOptimize(dx);
        benchmark::DoNotOptimize(dW);
    }
    probe.report(state);
}
BENCHMARK(BM_WinoEndToEnd)->Apply(threadArgs)
    ->Unit(benchmark::kMillisecond);

void
BM_ToomCookGenerate(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            makeWinograd(int(state.range(0)), int(state.range(1))));
}
BENCHMARK(BM_ToomCookGenerate)->Args({2, 3})->Args({4, 3})->Args({6, 3})
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------- --json baseline dump

struct JsonRecord
{
    std::string name;
    double ms = 0.0;
    double freshBytesPerIter = 0.0;
    double acquiresPerIter = 0.0;
};

/** Console output as usual, plus a record of every per-iteration run
 *  for the --json artifact. */
class RecordingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.run_type != Run::RT_Iteration)
                continue;
            JsonRecord rec;
            rec.name = r.benchmark_name();
            rec.ms = r.GetAdjustedRealTime(); // unit: kMillisecond
            auto it = r.counters.find("ws_fresh_bytes_per_iter");
            if (it != r.counters.end())
                rec.freshBytesPerIter = it->second;
            it = r.counters.find("ws_acquires_per_iter");
            if (it != r.counters.end())
                rec.acquiresPerIter = it->second;
            records.push_back(std::move(rec));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::vector<JsonRecord> records;
};

bool
writeJson(const std::string &path, const std::vector<JsonRecord> &recs)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < recs.size(); ++i)
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"ms_per_iter\": %.4f, "
                     "\"ws_fresh_bytes_per_iter\": %.1f, "
                     "\"ws_acquires_per_iter\": %.2f}%s\n",
                     recs[i].name.c_str(), recs[i].ms,
                     recs[i].freshBytesPerIter, recs[i].acquiresPerIter,
                     i + 1 < recs.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

/** Strip "--json <path>" (or "--json=<path>") from argv; returns the
 *  path or "" when the flag is absent. */
std::string
extractJsonFlag(int &argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            path = argv[++i];
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            path = argv[i] + 7;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = extractJsonFlag(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    RecordingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (!json_path.empty()) {
        if (writeJson(json_path, reporter.records))
            std::printf("json baseline: %s\n", json_path.c_str());
        else
            std::fprintf(stderr, "cannot write json baseline to %s\n",
                         json_path.c_str());
    }
    // Emit the observability artifacts before returning so the dump
    // exists even if a wrapper kills the process at exit.
    winomc::metrics::dumpIfConfigured();
    winomc::trace::flushIfConfigured();
    if (!winomc::metrics::configuredPath().empty())
        std::printf("metrics dump: %s\n",
                    winomc::metrics::configuredPath().c_str());
    if (!winomc::trace::configuredPath().empty())
        std::printf("trace file:   %s\n",
                    winomc::trace::configuredPath().c_str());
    return 0;
}
