# Empty dependencies file for fig09_composite_network.
# This may be replaced when dependencies are built.
