file(REMOVE_RECURSE
  "libwinomc_nn.a"
)
