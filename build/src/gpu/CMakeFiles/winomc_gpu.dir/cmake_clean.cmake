file(REMOVE_RECURSE
  "CMakeFiles/winomc_gpu.dir/gpu_model.cc.o"
  "CMakeFiles/winomc_gpu.dir/gpu_model.cc.o.d"
  "libwinomc_gpu.a"
  "libwinomc_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winomc_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
