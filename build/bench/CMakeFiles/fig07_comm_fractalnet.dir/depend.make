# Empty dependencies file for fig07_comm_fractalnet.
# This may be replaced when dependencies are built.
