file(REMOVE_RECURSE
  "libwinomc_ndp.a"
)
