#include "mpt/task_graph.hh"

#include <algorithm>
#include <deque>
#include <functional>

#include "common/logging.hh"
#include "common/trace.hh"

namespace winomc::mpt {

TaskId
TaskGraph::addTask(std::string name, double seconds, int resource)
{
    winomc_assert(seconds >= 0.0, "negative task duration for ", name);
    winomc_assert(resource >= kNoResource, "bad resource id");
    Task t;
    t.name = std::move(name);
    t.seconds = seconds;
    t.resource = resource;
    tasks.push_back(std::move(t));
    maxResource = std::max(maxResource, resource);
    return TaskId(tasks.size()) - 1;
}

void
TaskGraph::addDependency(TaskId before, TaskId after)
{
    winomc_assert(before >= 0 && before < TaskId(tasks.size()) &&
                  after >= 0 && after < TaskId(tasks.size()),
                  "dependency on unknown task");
    winomc_assert(before != after, "self dependency");
    tasks[size_t(before)].dependents.push_back(after);
    ++tasks[size_t(after)].pendingDeps;
}

double
TaskGraph::simulate()
{
    sim::EventQueue eq;
    auto to_ticks = [](double sec) { return Tick(sec * 1e12 + 0.5); };
    auto to_sec = [](Tick t) { return double(t) * 1e-12; };

    // Per-resource ready queues (FIFO in task-id order for determinism)
    // and busy flags.
    std::vector<std::deque<TaskId>> ready(size_t(maxResource) + 1);
    std::vector<bool> busy(size_t(maxResource) + 1, false);
    Tick makespan = 0;

    std::function<void(TaskId)> start_task;
    std::function<void(TaskId)> complete_task;

    auto dispatch = [&](int resource) {
        if (resource == kNoResource)
            return;
        if (busy[size_t(resource)] || ready[size_t(resource)].empty())
            return;
        TaskId id = ready[size_t(resource)].front();
        ready[size_t(resource)].pop_front();
        busy[size_t(resource)] = true;
        start_task(id);
    };

    start_task = [&](TaskId id) {
        Task &t = tasks[size_t(id)];
        t.start = to_sec(eq.now());
        eq.scheduleAfter(to_ticks(t.seconds),
                         [&complete_task, id] { complete_task(id); });
    };

    complete_task = [&](TaskId id) {
        Task &t = tasks[size_t(id)];
        t.finish = to_sec(eq.now());
        makespan = std::max(makespan, eq.now());
        if (t.resource != kNoResource) {
            busy[size_t(t.resource)] = false;
            dispatch(t.resource);
        }
        for (TaskId dep : t.dependents) {
            Task &d = tasks[size_t(dep)];
            winomc_assert(d.pendingDeps > 0, "dependency underflow");
            if (--d.pendingDeps == 0) {
                if (d.resource == kNoResource) {
                    start_task(dep);
                } else {
                    ready[size_t(d.resource)].push_back(dep);
                    dispatch(d.resource);
                }
            }
        }
    };

    // Seed the initially-ready tasks.
    for (TaskId id = 0; id < TaskId(tasks.size()); ++id) {
        const Task &t = tasks[size_t(id)];
        if (t.pendingDeps == 0) {
            if (t.resource == kNoResource)
                start_task(id);
            else
                ready[size_t(t.resource)].push_back(id);
        }
    }
    for (int r = 0; r <= maxResource; ++r)
        dispatch(r);

    eq.run();

    for (const Task &t : tasks) {
        winomc_assert(t.finish >= 0.0, "task '", t.name,
                      "' never ran - dependency cycle?");
    }
    if (trace::enabled())
        exportTrace("mpt task graph");
    return to_sec(makespan);
}

void
TaskGraph::exportTrace(const std::string &label) const
{
    if (!trace::enabled())
        return;
    // Each export gets its own trace process so overlapping simulated
    // schedules (e.g. the dynamic-clustering candidates) stay on
    // separate timelines; one track per execution resource, with the
    // unserialized (kNoResource) tasks on track 0.
    const int pid = trace::allocSimPid();
    trace::namePid(pid, label + " (sim pid " + std::to_string(pid) +
                            ", virtual time)");
    for (const Task &t : tasks) {
        if (t.finish < 0.0)
            continue;
        trace::emitCompleteAt(t.name, "mpt-sim", t.start * 1e6,
                              (t.finish - t.start) * 1e6, pid,
                              t.resource - kNoResource);
    }
}

double
TaskGraph::finishTime(TaskId id) const
{
    return tasks.at(size_t(id)).finish;
}

double
TaskGraph::startTime(TaskId id) const
{
    return tasks.at(size_t(id)).start;
}

const std::string &
TaskGraph::taskName(TaskId id) const
{
    return tasks.at(size_t(id)).name;
}

} // namespace winomc::mpt
