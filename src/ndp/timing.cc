#include "ndp/timing.hh"

#include <algorithm>

#include "common/logging.hh"

namespace winomc::ndp {

uint64_t
systolicCycles(const NdpConfig &cfg, uint64_t m, uint64_t k, uint64_t n)
{
    winomc_assert(m > 0 && k > 0 && n > 0, "degenerate matmul");
    const uint64_t s = uint64_t(cfg.systolicDim);
    const uint64_t blocks = ((m + s - 1) / s) * ((n + s - 1) / s);
    // Double-buffered weight-stationary dataflow: consecutive output
    // blocks overlap their fill/drain, so the pipeline is filled once.
    return blocks * k + 2 * s;
}

double
systolicTime(const NdpConfig &cfg, uint64_t m, uint64_t k, uint64_t n)
{
    return double(systolicCycles(cfg, m, k, n)) / cfg.clockHz;
}

double
systolicUtilization(const NdpConfig &cfg, uint64_t m, uint64_t k,
                    uint64_t n)
{
    const double s = double(cfg.systolicDim);
    const double cycles = double(systolicCycles(cfg, m, k, n));
    return double(m) * double(k) * double(n) / (cycles * s * s);
}

double
vectorTime(const NdpConfig &cfg, uint64_t ops)
{
    const uint64_t lanes = uint64_t(cfg.vectorLanes);
    uint64_t cycles = (ops + lanes - 1) / lanes;
    return double(cycles) / cfg.clockHz;
}

double
transformTime(const NdpConfig &cfg, uint64_t macs)
{
    const uint64_t lanes = uint64_t(cfg.transformLanes);
    uint64_t cycles = (macs + lanes - 1) / lanes;
    return double(cycles) / cfg.clockHz;
}

double
dramTime(const NdpConfig &cfg, uint64_t bytes)
{
    return double(bytes) / cfg.dramBandwidth;
}

double
overlappedTaskTime(const NdpConfig &cfg, double compute_sec,
                   uint64_t dram_bytes)
{
    return std::max(compute_sec, dramTime(cfg, dram_bytes)) +
           cfg.taskOverheadSec;
}

} // namespace winomc::ndp
