/**
 * @file
 * Console table printer used by the bench harnesses to emit the rows the
 * paper's tables and figures report.
 */

#ifndef WINOMC_COMMON_TABLE_HH
#define WINOMC_COMMON_TABLE_HH

#include <initializer_list>
#include <string>
#include <vector>

namespace winomc {

/**
 * Accumulates rows of strings/numbers and prints them with aligned
 * columns, a header rule, and an optional title.
 */
class Table
{
  public:
    explicit Table(std::string title = "");

    Table &header(std::initializer_list<std::string> cols);
    Table &header(const std::vector<std::string> &cols);

    /** Begin a new row. */
    Table &row();
    /** Append one cell to the current row. */
    Table &cell(const std::string &v);
    Table &cell(const char *v);
    Table &cell(double v, int precision = 3);
    Table &cell(int64_t v);
    Table &cell(uint64_t v);
    Table &cell(int v) { return cell(int64_t(v)); }
    /** Insert a horizontal separator after the current row. */
    Table &rule();

    std::string toString() const;
    /** Print to stdout. */
    void print() const;

  private:
    std::string title;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
    std::vector<size_t> rules_after; // row indices followed by a rule
};

/** Format bytes with a binary-unit suffix (e.g. "3.2 MiB"). */
std::string formatBytes(double bytes);
/** Format seconds with an SI suffix (e.g. "1.24 ms"). */
std::string formatTime(double seconds);

} // namespace winomc

#endif // WINOMC_COMMON_TABLE_HH
