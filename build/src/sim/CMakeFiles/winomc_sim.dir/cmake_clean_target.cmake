file(REMOVE_RECURSE
  "libwinomc_sim.a"
)
