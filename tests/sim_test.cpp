/**
 * @file
 * Tests for the discrete-event kernel: ordering, determinism, time
 * semantics.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace winomc::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, FifoTieBreakAtSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int k = 0; k < 10; ++k)
        eq.schedule(5, [&order, k] { order.push_back(k); });
    eq.run();
    for (int k = 0; k < 10; ++k)
        EXPECT_EQ(order[size_t(k)], k);
}

TEST(EventQueue, ScheduleFromWithinEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(4, [&] {
            ++fired;
            EXPECT_EQ(eq.now(), 5u);
        });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilStopsAndAdvancesTime)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClears)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueue, MaxEventsBound)
{
    EventQueue eq;
    int fired = 0;
    for (int k = 0; k < 100; ++k)
        eq.schedule(Tick(k), [&] { ++fired; });
    eq.run(10);
    EXPECT_EQ(fired, 10);
}

} // namespace
} // namespace winomc::sim
