/**
 * @file
 * Chrome trace-event recorder: span files loadable in chrome://tracing
 * and Perfetto.
 *
 *  - Knob: WINOMC_TRACE=<path>. When set, spans record and the trace
 *    file is written at process exit; when unset every span is a
 *    single relaxed atomic load and branch. Tests/tools can flip
 *    recording with setEnabled() and write with flushToFile().
 *  - Host spans ("X" complete events) carry the wall-clock time since
 *    process start in microseconds, pid kHostPid, and a small
 *    per-thread tid, buffered per thread and merged on flush (same
 *    sharding discipline as common/metrics.hh, TSan-clean).
 *  - Simulators can emit spans on *virtual* timelines with
 *    emitCompleteAt() under their own pid (e.g. the MPT task-graph
 *    schedule with one track per execution resource); namePid()
 *    attaches a process_name metadata record so the viewer labels the
 *    track group.
 *
 * The combined WINOMC_SPAN(name, cat) macro below times a scope once
 * and feeds both this recorder and the metrics timer of the same name.
 */

#ifndef WINOMC_COMMON_TRACE_HH
#define WINOMC_COMMON_TRACE_HH

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/metrics.hh"

namespace winomc::trace {

/** pid of the host (real wall-clock) timeline. */
constexpr int kHostPid = 1;

/** True when trace recording is on (one relaxed atomic load). */
inline bool
enabled()
{
    extern std::atomic<bool> gEnabled;
    return gEnabled.load(std::memory_order_relaxed);
}

/** Turn recording on/off programmatically (tests, tools). */
void setEnabled(bool on);

/** Path configured via WINOMC_TRACE, or "" when unset. */
const std::string &configuredPath();

/** Override the flush path programmatically (tests, crash handlers):
 *  after this, flushIfConfigured() — including the best-effort flush
 *  on fatal/panic — writes to `path`. Does not arm the at-exit
 *  flush. */
void setConfiguredPath(const std::string &path);

/** Microseconds of wall clock since process start. */
double nowUs();

/** Small dense id of the calling thread (host timeline tid). */
int currentTid();

/** Record a completed host span [ts_us, ts_us + dur_us). */
void emitComplete(const char *name, const char *cat, double ts_us,
                  double dur_us);

/**
 * One "key": "value" argument attached to a span (rendered into the
 * Chrome-trace "args" object, shown in the Perfetto details pane).
 * Values are emitted as JSON strings; keep keys plain identifiers.
 */
struct SpanArg
{
    std::string key;
    std::string value;
};

/**
 * Record a completed host span carrying args — the distributed-
 * tracing primitive: serving emits per-request spans whose
 * {"trace_id": "<id>"} arg links them to batch spans and to the
 * latency histogram's exemplars.
 */
void emitCompleteArgs(const char *name, const char *cat, double ts_us,
                      double dur_us, std::vector<SpanArg> args);

/** Record a completed span on an arbitrary (pid, tid) timeline —
 *  virtual time is fine; simulators pick their own pid. */
void emitCompleteAt(const std::string &name, const char *cat,
                    double ts_us, double dur_us, int pid, int tid);

/** Attach a process_name metadata record to `pid`. */
void namePid(int pid, const std::string &name);

/** Fresh pid for one simulator timeline (monotonic, starts above
 *  kHostPid). */
int allocSimPid();

/** Drop all buffered events. Recording state unchanged. */
void reset();

/** Serialize buffered events as a Chrome JSON trace. */
std::string toJson();

/** Write the trace to `path`. */
void flushToFile(const std::string &path);

/** flushToFile(configuredPath()) when WINOMC_TRACE is set; also runs
 *  automatically at process exit. */
void flushIfConfigured();

} // namespace winomc::trace

namespace winomc {

/**
 * RAII scope instrumentation: one steady_clock interval feeding the
 * trace recorder (a host "X" span) and the metrics timer of the same
 * name. Costs two relaxed loads when both are disabled.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name, const char *cat = "host")
        : name(name), cat(cat),
          active(trace::enabled() || metrics::enabled())
    {
        if (active)
            start = std::chrono::steady_clock::now();
    }

    ~ScopedSpan()
    {
        if (!active)
            return;
        const auto end = std::chrono::steady_clock::now();
        const double sec =
            std::chrono::duration<double>(end - start).count();
        if (trace::enabled()) {
            const double end_us = trace::nowUs();
            trace::emitComplete(name, cat, end_us - sec * 1e6,
                                sec * 1e6);
        }
        if (metrics::enabled())
            metrics::timerAdd(name, sec);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name;
    const char *cat;
    bool active;
    std::chrono::steady_clock::time_point start;
};

} // namespace winomc

#define WINOMC_SPAN_CONCAT2(a, b) a##b
#define WINOMC_SPAN_CONCAT(a, b) WINOMC_SPAN_CONCAT2(a, b)

/** Time the enclosing scope into trace span + metrics timer `name`. */
#define WINOMC_SPAN(name, cat)                                               \
    ::winomc::ScopedSpan WINOMC_SPAN_CONCAT(winomc_span_, __LINE__)(name,    \
                                                                    cat)

#endif // WINOMC_COMMON_TRACE_HH
